// Pluggable event-queue backends for the DES kernel.
//
// The simulator's pending-event set is a priority queue of 24-byte POD
// entries ordered by (time, sequence); the sequence tie-break makes runs
// bitwise deterministic regardless of backend. This header defines the
// EventQueuePolicy concept — the seam between the Simulator run loop and the
// queue data structure — and two conforming backends:
//
//  * FourAryHeapQueue — the original cache-friendly 4-ary implicit heap.
//    O(log4 n) push/pop, two cache lines touched per level. The safe default.
//  * CalendarQueue — a two-tier ladder queue tuned for the near-future-heavy
//    event mix of desktop-grid runs (most schedules land close to now, a thin
//    tail of failure/repair events lands far out). Near-future entries live
//    in a small sorted vector (O(1) pop, short memmove on insert); far-future
//    entries accumulate in an unsorted overflow list (O(1) push) that is
//    bucketed into a ladder rung-by-rung as the clock reaches it, so each
//    entry is sorted once inside a small bucket instead of sifted through a
//    deep heap.
//
// Every backend must pop in ascending (time, sequence) order — the bitwise-
// determinism contract. tests/test_kernel_equivalence.cpp runs the full
// policy x availability matrix on each backend and asserts identical event
// sequences and kernel counters; tests/test_des.cpp cross-checks the
// backends directly on randomized push/pop traces.
//
// Backend selection: the DGSCHED_QUEUE CMake cache variable picks the
// compile-time default; the DGSCHED_QUEUE environment variable ("heap4" |
// "calendar") overrides it at runtime (see default_queue_backend()).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "des/event.hpp"
#include "util/assert.hpp"

namespace dg::des {

/// One priority-queue entry. Stale entries (slot generation moved on) are
/// skipped when they surface at the front — cancellation never touches the
/// queue structure.
struct QueueEntry {
  SimTime time;
  std::uint64_t sequence;  ///< Deterministic FIFO tie-break at equal times.
  std::uint32_t slot;
  std::uint32_t generation;
};

/// Strict weak order the kernel fires events in: ascending time, scheduling
/// order within a timestamp.
[[nodiscard]] constexpr bool queue_earlier(const QueueEntry& a, const QueueEntry& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

/// The seam between Simulator and its pending-event store. Semantics every
/// backend must honour:
///  * top()/pop() yield entries in ascending (time, sequence) order;
///  * size() counts every pushed-not-yet-popped entry, stale ones included
///    (the kernel's heap_peak counter is defined over this physical size);
///  * clear() empties the queue but retains capacity (workspace reuse);
///  * top() may mutate internal state (the calendar queue sorts its next
///    rung lazily) but never the pop order.
template <typename Q>
concept EventQueuePolicy = requires(Q q, const Q cq, const QueueEntry& e) {
  { q.push(e) } -> std::same_as<void>;
  { q.top() } -> std::convertible_to<const QueueEntry&>;
  { q.pop() } -> std::same_as<void>;
  { cq.empty() } -> std::convertible_to<bool>;
  { cq.size() } -> std::convertible_to<std::size_t>;
  { q.clear() } -> std::same_as<void>;
};

/// The original kernel queue: a 4-ary implicit heap of QueueEntry PODs.
class FourAryHeapQueue {
 public:
  void push(const QueueEntry& entry) {
    std::size_t hole = heap_.size();
    heap_.push_back(entry);
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!queue_earlier(entry, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = entry;
  }

  [[nodiscard]] const QueueEntry& top() noexcept { return heap_.front(); }

  void pop() {
    const QueueEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t size = heap_.size();
    if (size == 0) return;
    // Sift the former last element down from the root, always descending into
    // the earliest of (up to) four children — two cache lines per level.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = hole * kArity + 1;
      if (first_child >= size) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + kArity, size);
      for (std::size_t child = first_child + 1; child < end; ++child) {
        if (queue_earlier(heap_[child], heap_[best])) best = child;
      }
      if (!queue_earlier(heap_[best], last)) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = last;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  void clear() noexcept { heap_.clear(); }

 private:
  static constexpr std::size_t kArity = 4;
  std::vector<QueueEntry> heap_;
};

/// A two-tier calendar/ladder queue.
///
/// State machine:
///  * Without a ladder, entries with time below `near_limit_` are insertion-
///    sorted into `near_` (drained in place through `cursor_`); later entries
///    append to the unsorted `overflow_` in O(1). When the live part of
///    `near_` outgrows a threshold, its tail spills to `overflow_` and
///    `near_limit_` drops to the first spilled time, keeping inserts short.
///  * When `near_` drains and `overflow_` is non-empty, the overflow is
///    bucketed into a ladder of equal-width rungs spanning
///    [min overflow time, max overflow time]. Rungs are swapped into `near_`
///    and sorted one at a time as the clock reaches them, so each entry is
///    sorted once within a small bucket. Pushes while a ladder is active
///    route by the same bucket-index arithmetic used to build it, which
///    makes same-timestamp entries land in the same container regardless of
///    floating-point rounding at rung boundaries; the sequence tie-break
///    then restores FIFO order locally. Entries past the last rung fall back
///    to `overflow_` and seed the next ladder.
///
/// Pop order is provably ascending (time, sequence): every overflow entry is
/// no earlier than `near_limit_` (boundary timestamp ties always carry
/// larger sequence numbers than the near-side entries they tie with), and a
/// pushed entry always carries the largest pending sequence, so routing it
/// to the same-or-later container than its timestamp peers preserves order.
class CalendarQueue {
 public:
  void push(const QueueEntry& entry) {
    ++size_;
    if (ladder_active_) {
      const double d = (entry.time - base_) / width_;
      if (!(d >= static_cast<double>(current_bucket_) + 1.0)) {
        near_insert(entry);
      } else if (d >= static_cast<double>(bucket_count_)) {
        overflow_.push_back(entry);
      } else {
        buckets_[static_cast<std::size_t>(d)].push_back(entry);
      }
      return;
    }
    if (entry.time < near_limit_) {
      near_insert(entry);
      if (near_.size() - cursor_ > kSpillThreshold) spill_near();
    } else {
      overflow_.push_back(entry);
    }
  }

  [[nodiscard]] const QueueEntry& top() {
    DG_ASSERT(size_ > 0);
    if (cursor_ == near_.size()) refill();
    return near_[cursor_];
  }

  void pop() {
    DG_ASSERT(size_ > 0);
    if (cursor_ == near_.size()) refill();
    ++cursor_;
    --size_;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void clear() noexcept;

 private:
  /// Spill when the live (unpopped) part of near_ exceeds this many entries;
  /// bounds the memmove cost of a sorted insert.
  static constexpr std::size_t kSpillThreshold = 2048;
  /// Entries retained in near_ by a spill — enough to keep popping without an
  /// immediate refill.
  static constexpr std::size_t kNearKeep = 64;
  /// Target entries per ladder rung; rung count is the power of two nearest
  /// overflow_size / kBucketChunk.
  static constexpr std::size_t kBucketChunk = 32;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;

  void near_insert(const QueueEntry& entry) {
    // The live region starts at cursor_: a new entry is never earlier than
    // the last popped one (time >= now and its sequence is the largest yet),
    // so the insertion point is always at or after cursor_.
    auto it = std::upper_bound(near_.begin() + static_cast<std::ptrdiff_t>(cursor_), near_.end(),
                               entry, queue_earlier);
    near_.insert(it, entry);
  }

  void spill_near();
  void refill();
  void build_ladder();

  std::vector<QueueEntry> near_;   ///< Sorted; [0, cursor_) already popped.
  std::size_t cursor_ = 0;
  std::vector<QueueEntry> overflow_;  ///< Unsorted; times >= near_limit_.
  std::vector<std::vector<QueueEntry>> buckets_;
  std::size_t bucket_count_ = 0;
  std::size_t current_bucket_ = 0;  ///< Rung currently merged into near_.
  bool ladder_active_ = false;
  double near_limit_ = std::numeric_limits<double>::infinity();
  double base_ = 0.0;   ///< Ladder origin (min overflow time at build).
  double width_ = 1.0;  ///< Rung width in simulated seconds.
  std::size_t size_ = 0;
};

static_assert(EventQueuePolicy<FourAryHeapQueue>);
static_assert(EventQueuePolicy<CalendarQueue>);

/// Runtime-selectable backend identifier. Both backends are always compiled
/// in (the equivalence suite runs them side by side in one binary); the enum
/// picks which one a Simulator instance drives.
enum class QueueBackend : std::uint8_t {
  kHeap4 = 0,
  kCalendar = 1,
};

[[nodiscard]] std::string_view to_string(QueueBackend backend) noexcept;

/// Parses "heap4" / "calendar"; nullopt on anything else.
[[nodiscard]] std::optional<QueueBackend> parse_queue_backend(std::string_view text) noexcept;

/// The backend a default-constructed Simulator uses: the DGSCHED_QUEUE
/// environment variable when set ("heap4" | "calendar"; anything else throws
/// std::invalid_argument naming the variable and value), otherwise the
/// compile-time default chosen by the DGSCHED_QUEUE CMake cache variable.
[[nodiscard]] QueueBackend default_queue_backend();

}  // namespace dg::des
