// The unit of result transport between a replication and its cell fold.
//
// Both runners — the threaded ExperimentRunner and the multi-process
// ShardedRunner — reduce one finished replication to this summary (scalars
// plus copies of the tail sketches, so the worker never retains the full
// SimulationResult whose buffers belong to a reused workspace), then fold
// summaries into CellResults after the round barrier, in build order. The
// fold sequence, not the execution schedule, is what makes results
// bit-identical across threads, batch shapes, process counts, and
// kill/resume schedules — so the fold lives here, in exactly one place.
//
// serialize()/deserialize() move a summary across a process boundary (shard
// protocol messages, journal records) with every double stored bitwise and
// every sketch count exact; a deserialized summary folds to the same bits
// as the original.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"
#include "stats/quantile_sketch.hpp"
#include "util/binary_io.hpp"

namespace dg::exp {

struct CellResult;

/// The per-replication data a CellResult folds in. Sketch counts are exact
/// integers, so folding copies in build order reproduces the sequential
/// accumulator sequences bit for bit.
struct ReplicationSummary {
  double turnaround_mean = 0.0;
  double waiting_mean = 0.0;
  double makespan_mean = 0.0;
  double utilization = 0.0;
  double decayed_utilization = 0.0;
  double wasted_fraction = 0.0;
  double lost_work = 0.0;
  double transfer_retries = 0.0;
  double replicas_degraded = 0.0;
  double server_downtime = 0.0;
  stats::QuantileSketch turnaround_tail;
  stats::QuantileSketch slowdown_tail;
  stats::QuantileSketch completion_gap_tail;
  std::uint64_t events_executed = 0;
  bool saturated = false;

  /// Appends the summary's full state to `out` (doubles bitwise, sketches
  /// via QuantileSketch::serialize).
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Reconstructs a serialized summary; throws std::runtime_error on
  /// truncated or malformed input.
  [[nodiscard]] static ReplicationSummary deserialize(util::ByteReader& reader);
};

/// Reduces a finished replication to its summary.
[[nodiscard]] ReplicationSummary summarize(const sim::SimulationResult& result);

/// Folds one summary into a cell's accumulators. Callers must fold in build
/// order (cell-major, ascending replication) — the bit-identity contract.
void fold(CellResult& cell, const ReplicationSummary& summary);

/// Rough relative wall-clock cost of one replication of a cell: event count
/// scales with bags x tasks-per-bag. Only used to order job hand-out
/// (largest first, so no worker is left holding the one huge cell at the end
/// of a round); accuracy beyond the ordering does not matter.
[[nodiscard]] double expected_cost(const sim::SimulationConfig& config);

}  // namespace dg::exp
