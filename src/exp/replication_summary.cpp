#include "exp/replication_summary.hpp"

#include <algorithm>

#include "exp/runner.hpp"

namespace dg::exp {

void ReplicationSummary::serialize(std::vector<std::uint8_t>& out) const {
  util::put_pod(out, turnaround_mean);
  util::put_pod(out, waiting_mean);
  util::put_pod(out, makespan_mean);
  util::put_pod(out, utilization);
  util::put_pod(out, decayed_utilization);
  util::put_pod(out, wasted_fraction);
  util::put_pod(out, lost_work);
  util::put_pod(out, transfer_retries);
  util::put_pod(out, replicas_degraded);
  util::put_pod(out, server_downtime);
  turnaround_tail.serialize(out);
  slowdown_tail.serialize(out);
  completion_gap_tail.serialize(out);
  util::put_pod(out, events_executed);
  util::put_pod(out, static_cast<std::uint8_t>(saturated));
}

ReplicationSummary ReplicationSummary::deserialize(util::ByteReader& reader) {
  ReplicationSummary summary;
  summary.turnaround_mean = reader.pod<double>();
  summary.waiting_mean = reader.pod<double>();
  summary.makespan_mean = reader.pod<double>();
  summary.utilization = reader.pod<double>();
  summary.decayed_utilization = reader.pod<double>();
  summary.wasted_fraction = reader.pod<double>();
  summary.lost_work = reader.pod<double>();
  summary.transfer_retries = reader.pod<double>();
  summary.replicas_degraded = reader.pod<double>();
  summary.server_downtime = reader.pod<double>();
  summary.turnaround_tail = stats::QuantileSketch::deserialize(reader);
  summary.slowdown_tail = stats::QuantileSketch::deserialize(reader);
  summary.completion_gap_tail = stats::QuantileSketch::deserialize(reader);
  summary.events_executed = reader.pod<std::uint64_t>();
  summary.saturated = reader.pod<std::uint8_t>() != 0;
  return summary;
}

ReplicationSummary summarize(const sim::SimulationResult& result) {
  ReplicationSummary summary;
  summary.turnaround_mean = result.turnaround.mean();
  summary.waiting_mean = result.waiting.mean();
  summary.makespan_mean = result.makespan.mean();
  summary.utilization = result.utilization;
  summary.decayed_utilization = result.decayed_utilization;
  summary.wasted_fraction = result.wasted_fraction();
  summary.lost_work = result.lost_work;
  summary.transfer_retries = static_cast<double>(result.faults.transfer_retries);
  summary.replicas_degraded = static_cast<double>(result.faults.replicas_degraded);
  summary.server_downtime = result.faults.server_downtime;
  summary.turnaround_tail = result.turnaround_tail;
  summary.slowdown_tail = result.slowdown_tail;
  summary.completion_gap_tail = result.completion_gap_tail;
  summary.events_executed = result.events_executed;
  summary.saturated = result.saturated;
  return summary;
}

void fold(CellResult& cell, const ReplicationSummary& summary) {
  cell.turnaround.add(summary.turnaround_mean);
  cell.waiting.add(summary.waiting_mean);
  cell.makespan.add(summary.makespan_mean);
  cell.utilization.add(summary.utilization);
  cell.decayed_utilization.add(summary.decayed_utilization);
  cell.wasted_fraction.add(summary.wasted_fraction);
  cell.lost_work.add(summary.lost_work);
  cell.transfer_retries.add(summary.transfer_retries);
  cell.replicas_degraded.add(summary.replicas_degraded);
  cell.server_downtime.add(summary.server_downtime);
  cell.turnaround_tail.merge(summary.turnaround_tail);
  cell.slowdown_tail.merge(summary.slowdown_tail);
  cell.completion_gap_tail.merge(summary.completion_gap_tail);
  cell.events_executed += summary.events_executed;
  ++cell.replications;
  if (summary.saturated) ++cell.saturated_replications;
}

double expected_cost(const sim::SimulationConfig& config) {
  const double granularity =
      config.workload.types.empty() ? 1000.0 : config.workload.types.front().granularity;
  const double tasks_per_bot =
      granularity > 0.0 ? std::max(1.0, config.workload.bag_size / granularity) : 1.0;
  return static_cast<double>(config.workload.num_bots) * tasks_per_bot;
}

}  // namespace dg::exp
