#include "exp/shard.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/journal.hpp"
#include "exp/replication_summary.hpp"
#include "grid/world_pool.hpp"
#include "rng/splitmix64.hpp"
#include "sim/workspace.hpp"
#include "util/binary_io.hpp"
#include "util/logging.hpp"

namespace dg::exp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Shard protocol: framed messages over a per-worker SOCK_STREAM socketpair.
// Same-machine siblings of one build, so payloads are host-endian PODs
// (util/binary_io.hpp); the frame carries type + payload size.
//
//   kAssign     C->W  chunk_id u64 | count u32 | count x (cell u32, rep u32)
//   kChunkDone  W->C  chunk_id u64 | count u32 |
//                     count x (cell u32, rep u32, size u32, summary bytes)
//   kShutdown   C->W  (empty) — worker replies kStats and exits
//   kStats      W->C  8 x u64 WorldCacheStats counters
// ---------------------------------------------------------------------------

enum MsgType : std::uint32_t {
  kAssign = 1,
  kChunkDone = 2,
  kShutdown = 3,
  kStats = 4,
};

struct MsgHeader {
  std::uint32_t type = 0;
  std::uint32_t size = 0;  ///< Payload bytes following the header.
};

/// Sends a framed message; false on a broken pipe (peer died). MSG_NOSIGNAL
/// turns SIGPIPE into an error return — the coordinator must not die with a
/// worker.
[[nodiscard]] bool send_msg(int fd, std::uint32_t type, const std::uint8_t* payload,
                            std::size_t size) {
  MsgHeader header{type, static_cast<std::uint32_t>(size)};
  const auto send_all = [fd](const void* data, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < len) {
      const ::ssize_t n = ::send(fd, bytes + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  };
  return send_all(&header, sizeof(header)) && (size == 0 || send_all(payload, size));
}

/// Reads exactly `size` bytes; false on EOF (peer gone).
[[nodiscard]] bool read_exact(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] bool read_msg(int fd, MsgHeader& header, std::vector<std::uint8_t>& payload) {
  if (!read_exact(fd, &header, sizeof(header))) return false;
  payload.resize(header.size);
  return header.size == 0 || read_exact(fd, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Worker process body. Never returns; never runs the parent's exit handlers
// (_exit), so the fork leaves the coordinator's stdio/file state untouched.
// ---------------------------------------------------------------------------

[[noreturn]] void worker_main(int fd, const RunOptions& options,
                              const std::vector<NamedConfig>& cells, const std::string& pool_dir,
                              std::size_t kill_after_jobs) {
  try {
    std::shared_ptr<grid::WorldCache> world_cache;
    if (options.world_cache_bytes > 0) {
      world_cache = std::make_shared<grid::WorldCache>(options.world_cache_bytes);
      if (!pool_dir.empty()) {
        world_cache->attach_pool(std::make_shared<grid::WorldPool>(pool_dir));
      }
    }
    std::unique_ptr<sim::SimulationWorkspace> workspace;
    std::size_t jobs_run = 0;

    MsgHeader header;
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> reply;
    for (;;) {
      if (!read_msg(fd, header, payload)) std::_Exit(0);  // coordinator gone
      if (header.type == kShutdown) {
        const grid::WorldCacheStats stats =
            world_cache != nullptr ? world_cache->stats() : grid::WorldCacheStats{};
        std::vector<std::uint8_t> wire;
        util::put_pod(wire, stats.hits);
        util::put_pod(wire, stats.misses);
        util::put_pod(wire, stats.extensions);
        util::put_pod(wire, stats.pool_hits);
        util::put_pod(wire, stats.evictions);
        util::put_pod(wire, static_cast<std::uint64_t>(stats.entries));
        util::put_pod(wire, static_cast<std::uint64_t>(stats.bytes));
        util::put_pod(wire, static_cast<std::uint64_t>(stats.peak_bytes));
        (void)send_msg(fd, kStats, wire.data(), wire.size());
        std::_Exit(0);
      }
      if (header.type != kAssign) {
        std::fprintf(stderr, "shard worker: unexpected message type %u\n", header.type);
        std::_Exit(1);
      }

      util::ByteReader reader(payload.data(), payload.size());
      const auto chunk_id = reader.pod<std::uint64_t>();
      const auto count = reader.pod<std::uint32_t>();
      reply.clear();
      util::put_pod(reply, chunk_id);
      util::put_pod(reply, count);
      std::vector<std::uint8_t> summary_bytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto cell = reader.pod<std::uint32_t>();
        const auto replication = reader.pod<std::uint32_t>();

        sim::SimulationConfig config = cells[cell].config;
        // Seeds depend only on (base_seed, replication): common random
        // numbers across cells — identical to the threaded runner.
        config.seed = rng::mix_seed(options.base_seed, replication);
        config.world_cache = world_cache;
        if (options.queue_backend.has_value()) config.queue_backend = options.queue_backend;
        sim::Simulation simulation(std::move(config));
        ReplicationSummary summary;
        if (options.reuse_workspaces) {
          if (!workspace) workspace = std::make_unique<sim::SimulationWorkspace>();
          summary = summarize(simulation.run(*workspace));
        } else {
          summary = summarize(simulation.run());
        }
        ++jobs_run;
        // Failure-injection hook: die mid-chunk, after a completed job but
        // before the chunk reply — the coordinator must requeue and the
        // replacement worker redo the whole chunk.
        if (kill_after_jobs > 0 && jobs_run >= kill_after_jobs) std::_Exit(9);

        util::put_pod(reply, cell);
        util::put_pod(reply, replication);
        summary_bytes.clear();
        summary.serialize(summary_bytes);
        util::put_pod(reply, static_cast<std::uint32_t>(summary_bytes.size()));
        reply.insert(reply.end(), summary_bytes.begin(), summary_bytes.end());
      }
      if (!send_msg(fd, kChunkDone, reply.data(), reply.size())) std::_Exit(0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard worker: %s\n", e.what());
    std::_Exit(1);
  } catch (...) {
    std::fprintf(stderr, "shard worker: unknown error\n");
    std::_Exit(1);
  }
}

}  // namespace

ShardOptions ShardOptions::from_env(ShardOptions defaults) {
  if (auto v = env_size("DGSCHED_PROCS")) defaults.procs = *v;
  if (auto v = env_string("DGSCHED_JOURNAL")) defaults.journal_path = *v;
  if (auto v = env_string("DGSCHED_POOL")) defaults.pool_dir = *v;
  if (auto v = env_size("DGSCHED_JOURNAL_FSYNC")) defaults.fsync_journal = *v != 0;
  if (auto v = env_size("DGSCHED_SHARD_ABORT_AFTER")) defaults.abort_after_appends = *v;
  if (auto text = env_string("DGSCHED_SHARD_SELF_KILL")) {
    const std::size_t colon = text->find(':');
    bool ok = colon != std::string::npos && colon > 0 && colon + 1 < text->size();
    if (ok) {
      try {
        std::size_t used_a = 0;
        std::size_t used_b = 0;
        const std::string jobs_text = text->substr(colon + 1);
        defaults.self_kill_worker = std::stoull(text->substr(0, colon), &used_a);
        defaults.self_kill_jobs = std::stoull(jobs_text, &used_b);
        ok = used_a == colon && used_b == jobs_text.size();
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) bad_env("DGSCHED_SHARD_SELF_KILL", *text, "\"<worker>:<jobs>\"");
  }
  return defaults;
}

std::vector<CellResult> ShardedRunner::run(const std::vector<NamedConfig>& cells) {
  worker_stats_ = grid::WorldCacheStats{};
  recovered_ = 0;

  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const NamedConfig& cell : cells) {
    CellResult result;
    result.label = cell.label;
    result.config = cell.config;
    result.turnaround = stats::ReplicationAnalyzer(options_.ci_level,
                                                   options_.target_relative_error,
                                                   options_.min_replications);
    results.push_back(std::move(result));
  }
  if (cells.empty()) return results;

  const std::size_t procs = std::max<std::size_t>(1, shard_.procs);

  // Journal: recover the completed prefix of an earlier (killed) run of this
  // same campaign. The map is (cell, replication) -> summary; replication
  // indices are unique per cell, so the pair identifies a job across rounds.
  std::unique_ptr<CampaignJournal> journal;
  std::map<std::pair<std::uint32_t, std::uint32_t>, const ReplicationSummary*> recovered_map;
  if (!shard_.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        shard_.journal_path, CampaignJournal::campaign_signature(cells, options_));
    for (const CampaignJournal::Record& record : journal->recovered()) {
      recovered_map.emplace(std::make_pair(record.cell, record.replication), &record.summary);
    }
  }

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool busy = false;
    std::size_t chunk = kNone;
    bool spawned_once = false;  ///< Self-kill arms only the first incarnation.
  };
  std::vector<Worker> workers(procs);
  std::size_t respawns = 0;
  // Generous for flaky deaths, finite for a replication that crashes
  // deterministically (every respawn re-crashes until this throws).
  const std::size_t respawn_cap = procs * 8 + 8;

  auto spawn = [&](std::size_t w) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("ShardedRunner: socketpair failed");
    }
    const std::size_t kill_after =
        (!workers[w].spawned_once && w == shard_.self_kill_worker) ? shard_.self_kill_jobs : 0;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error("ShardedRunner: fork failed");
    }
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor we inherited so
      // sibling sockets don't stay half-open through us, then serve jobs.
      ::close(sv[0]);
      for (const Worker& other : workers) {
        if (other.fd >= 0) ::close(other.fd);
      }
      worker_main(sv[1], options_, cells, shard_.pool_dir, kill_after);
    }
    ::close(sv[1]);
    workers[w].pid = pid;
    workers[w].fd = sv[0];
    workers[w].alive = true;
    workers[w].busy = false;
    workers[w].chunk = kNone;
    workers[w].spawned_once = true;
  };

  struct Job {
    std::size_t cell = 0;
    std::size_t replication = 0;
  };

  std::vector<std::size_t> reps_launched(cells.size(), 0);
  std::vector<Job> round_jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < options_.min_replications; ++r) {
      round_jobs.push_back(Job{c, reps_launched[c]++});
    }
  }

  while (!round_jobs.empty()) {
    std::vector<ReplicationSummary> summaries(round_jobs.size());
    std::vector<char> done(round_jobs.size(), 0);

    // Hand-out order and chunk boundaries: the same construction as the
    // threaded runner (multi-cell replay groups by replication = world key,
    // classic mode by descending expected cost; chunks never split a
    // replication group), with the process count in the batch default where
    // the thread count was. The fold below runs in build order either way,
    // so none of this shapes the results.
    std::vector<std::size_t> order(round_jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (options_.multi_cell_replay) {
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return round_jobs[a].replication < round_jobs[b].replication;
      });
    } else {
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return expected_cost(results[round_jobs[a].cell].config) >
               expected_cost(results[round_jobs[b].cell].config);
      });
    }

    const std::size_t batch = options_.batch_size > 0
                                  ? options_.batch_size
                                  : std::max<std::size_t>(1, order.size() / (procs * 4));
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (options_.multi_cell_replay) {
      std::size_t begin = 0;
      for (std::size_t i = 1; i <= order.size(); ++i) {
        const bool group_boundary =
            i == order.size() ||
            round_jobs[order[i]].replication != round_jobs[order[i - 1]].replication;
        if (group_boundary && i - begin >= batch) {
          ranges.emplace_back(begin, i);
          begin = i;
        }
      }
      if (begin < order.size()) ranges.emplace_back(begin, order.size());
    } else {
      for (std::size_t begin = 0; begin < order.size(); begin += batch) {
        ranges.emplace_back(begin, std::min(begin + batch, order.size()));
      }
    }

    // Journal pre-fill: jobs already completed by a killed run fold from the
    // recovered records; only the remainder is dispatched.
    for (std::size_t i = 0; i < round_jobs.size(); ++i) {
      const auto it = recovered_map.find(std::make_pair(
          static_cast<std::uint32_t>(round_jobs[i].cell),
          static_cast<std::uint32_t>(round_jobs[i].replication)));
      if (it != recovered_map.end()) {
        summaries[i] = *it->second;
        done[i] = 1;
        ++recovered_;
      }
    }

    // Chunks = job lists still to run; a fully recovered range disappears.
    std::vector<std::vector<std::size_t>> chunks;
    for (const auto& [range_begin, range_end] : ranges) {
      std::vector<std::size_t> chunk;
      for (std::size_t i = range_begin; i < range_end; ++i) {
        if (!done[order[i]]) chunk.push_back(order[i]);
      }
      if (!chunk.empty()) chunks.push_back(std::move(chunk));
    }

    std::deque<std::size_t> pending(chunks.size());
    std::iota(pending.begin(), pending.end(), std::size_t{0});
    std::size_t completed = 0;

    auto handle_death = [&](std::size_t w) {
      Worker& worker = workers[w];
      if (worker.pid > 0) {
        int status = 0;
        (void)::waitpid(worker.pid, &status, 0);
      }
      if (worker.fd >= 0) ::close(worker.fd);
      worker.fd = -1;
      worker.pid = -1;
      worker.alive = false;
      if (worker.busy && worker.chunk != kNone) pending.push_back(worker.chunk);
      worker.busy = false;
      worker.chunk = kNone;
      if (++respawns > respawn_cap) {
        throw std::runtime_error(
            "ShardedRunner: worker respawn limit exceeded (a replication keeps crashing its "
            "worker; see stderr for the worker's error)");
      }
    };

    std::vector<std::uint8_t> wire;
    std::vector<std::uint8_t> payload;
    while (completed < chunks.size()) {
      // Assign pending chunks to idle workers, spawning/respawning as
      // needed. Workers persist across rounds; only death forces a respawn.
      for (std::size_t w = 0; w < procs && !pending.empty(); ++w) {
        if (workers[w].busy) continue;
        if (!workers[w].alive) spawn(w);
        const std::size_t chunk_id = pending.front();
        pending.pop_front();
        wire.clear();
        util::put_pod(wire, static_cast<std::uint64_t>(chunk_id));
        util::put_pod(wire, static_cast<std::uint32_t>(chunks[chunk_id].size()));
        for (std::size_t index : chunks[chunk_id]) {
          util::put_pod(wire, static_cast<std::uint32_t>(round_jobs[index].cell));
          util::put_pod(wire, static_cast<std::uint32_t>(round_jobs[index].replication));
        }
        workers[w].busy = true;
        workers[w].chunk = chunk_id;
        if (!send_msg(workers[w].fd, kAssign, wire.data(), wire.size())) handle_death(w);
      }

      std::vector<::pollfd> fds;
      std::vector<std::size_t> fd_workers;
      for (std::size_t w = 0; w < procs; ++w) {
        if (workers[w].alive && workers[w].busy) {
          fds.push_back(::pollfd{workers[w].fd, POLLIN, 0});
          fd_workers.push_back(w);
        }
      }
      if (fds.empty()) continue;  // every busy worker died; loop respawns
      if (::poll(fds.data(), fds.size(), -1) < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("ShardedRunner: poll failed");
      }

      for (std::size_t f = 0; f < fds.size(); ++f) {
        if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const std::size_t w = fd_workers[f];
        MsgHeader header;
        if (!read_msg(workers[w].fd, header, payload) || header.type != kChunkDone) {
          handle_death(w);
          continue;
        }
        util::ByteReader reader(payload.data(), payload.size());
        const auto chunk_id = static_cast<std::size_t>(reader.pod<std::uint64_t>());
        const auto count = reader.pod<std::uint32_t>();
        if (chunk_id != workers[w].chunk || count != chunks[chunk_id].size()) {
          throw std::runtime_error("ShardedRunner: protocol mismatch in chunk reply");
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto cell = reader.pod<std::uint32_t>();
          const auto replication = reader.pod<std::uint32_t>();
          const auto size = reader.pod<std::uint32_t>();
          util::ByteReader summary_reader(reader.skip(size), size);
          const std::size_t index = chunks[chunk_id][i];
          if (cell != round_jobs[index].cell || replication != round_jobs[index].replication) {
            throw std::runtime_error("ShardedRunner: job mismatch in chunk reply");
          }
          summaries[index] = ReplicationSummary::deserialize(summary_reader);
          done[index] = 1;
          if (journal) {
            journal->append(cell, replication, summaries[index]);
            // Failure-injection hook: simulate a coordinator kill at an
            // exact journal record boundary (fsync first so the boundary is
            // durable and the test deterministic).
            if (shard_.abort_after_appends > 0 &&
                journal->appended() >= shard_.abort_after_appends) {
              journal->sync();
              std::_Exit(3);
            }
          }
        }
        if (journal && shard_.fsync_journal) journal->sync();
        workers[w].busy = false;
        workers[w].chunk = kNone;
        ++completed;
      }
    }

    // Fold in build order (cell-major, ascending replication): bit-identical
    // accumulator sequences to the threaded and sequential runners,
    // independent of which process computed — or which journal record
    // supplied — each summary.
    for (std::size_t i = 0; i < round_jobs.size(); ++i) {
      fold(results[round_jobs[i].cell], summaries[i]);
    }

    round_jobs.clear();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      CellResult& cell = results[c];
      if (cell.saturated()) continue;
      if (cell.turnaround.precise_enough()) continue;
      if (reps_launched[c] >= options_.max_replications) continue;
      round_jobs.push_back(Job{c, reps_launched[c]++});
    }
  }

  // Shutdown: collect every worker's cache stats (the cross-process
  // pool_hit_rate), then reap.
  std::vector<std::uint8_t> payload;
  for (std::size_t w = 0; w < procs; ++w) {
    Worker& worker = workers[w];
    if (!worker.alive) continue;
    MsgHeader header;
    if (send_msg(worker.fd, kShutdown, nullptr, 0) && read_msg(worker.fd, header, payload) &&
        header.type == kStats && payload.size() == 8 * sizeof(std::uint64_t)) {
      util::ByteReader reader(payload.data(), payload.size());
      grid::WorldCacheStats stats;
      stats.hits = reader.pod<std::uint64_t>();
      stats.misses = reader.pod<std::uint64_t>();
      stats.extensions = reader.pod<std::uint64_t>();
      stats.pool_hits = reader.pod<std::uint64_t>();
      stats.evictions = reader.pod<std::uint64_t>();
      stats.entries = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      stats.bytes = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      stats.peak_bytes = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      worker_stats_.merge(stats);
    }
    ::close(worker.fd);
    worker.fd = -1;
    int status = 0;
    (void)::waitpid(worker.pid, &status, 0);
    worker.alive = false;
  }

  for (const CellResult& cell : results) {
    util::log_info("cell '", cell.label, "': mean turnaround ", cell.turnaround.stats().mean(),
                   " (", cell.replications, " reps",
                   cell.saturated() ? ", SATURATED" : "", ")");
  }
  return results;
}

}  // namespace dg::exp
