#include "exp/shard.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/journal.hpp"
#include "exp/pipeline.hpp"
#include "exp/replication_summary.hpp"
#include "grid/world_pool.hpp"
#include "rng/splitmix64.hpp"
#include "sim/workspace.hpp"
#include "util/binary_io.hpp"
#include "util/logging.hpp"
#include "util/shm_ring.hpp"

namespace dg::exp {

namespace {

// ---------------------------------------------------------------------------
// Shard protocol: framed control messages over a per-worker SOCK_STREAM
// socketpair; bulk summary payloads through a per-worker shared-memory ring
// (util/shm_ring.hpp) created before fork. Same-machine siblings of one
// build, so payloads are host-endian PODs (util/binary_io.hpp); the frame
// carries type + payload size.
//
//   kAssign     C->W  chunk_id u64 | count u32
//                     | count x (cell u32, rep u32, slot u32)
//                     slot = ShmRing::kNoSlot means "reply inline".
//   kChunkDone  W->C  chunk_id u64 | count u32
//                     | count x (cell u32, rep u32, size u32 [, size bytes])
//                     size == 0 means the summary is in the assigned ring
//                     slot; size > 0 carries it inline (no slot was
//                     assigned, or the summary outgrew the slot).
//   kShutdown   C->W  (empty) — worker replies kStats and exits
//   kStats      W->C  8 x u64 WorldCacheStats counters, busy_ns u64,
//                     jobs u64
// ---------------------------------------------------------------------------

enum MsgType : std::uint32_t {
  kAssign = 1,
  kChunkDone = 2,
  kShutdown = 3,
  kStats = 4,
};

constexpr std::size_t kStatsWords = 10;
/// Upper bound on adaptive chunk size (jobs per kAssign); the ring is sized
/// so two chunks of this size plus a whole replication group always fit.
constexpr std::size_t kChunkCap = 32;

struct MsgHeader {
  std::uint32_t type = 0;
  std::uint32_t size = 0;  ///< Payload bytes following the header.
};

/// Sends a framed message; false on a broken pipe (peer died). MSG_NOSIGNAL
/// turns SIGPIPE into an error return — the coordinator must not die with a
/// worker.
[[nodiscard]] bool send_msg(int fd, std::uint32_t type, const std::uint8_t* payload,
                            std::size_t size) {
  MsgHeader header{type, static_cast<std::uint32_t>(size)};
  const auto send_all = [fd](const void* data, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < len) {
      const ::ssize_t n = ::send(fd, bytes + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  };
  return send_all(&header, sizeof(header)) && (size == 0 || send_all(payload, size));
}

/// Reads exactly `size` bytes; false on EOF (peer gone).
[[nodiscard]] bool read_exact(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] bool read_msg(int fd, MsgHeader& header, std::vector<std::uint8_t>& payload) {
  if (!read_exact(fd, &header, sizeof(header))) return false;
  payload.resize(header.size);
  return header.size == 0 || read_exact(fd, payload.data(), payload.size());
}

/// Ring-slot payload capacity: the wire size of a default summary (the
/// sketch geometry is fixed, so real summaries serialize to the same size)
/// plus slack. A summary that still outgrows the slot falls back to inline
/// transport — correctness never depends on this bound.
[[nodiscard]] std::size_t ring_payload_capacity() {
  ReplicationSummary probe;
  std::vector<std::uint8_t> bytes;
  probe.serialize(bytes);
  return bytes.size() + 1024;
}

// ---------------------------------------------------------------------------
// Worker process body. Never returns; never runs the parent's exit handlers
// (_exit), so the fork leaves the coordinator's stdio/file state untouched.
// ---------------------------------------------------------------------------

[[noreturn]] void worker_main(int fd, const RunOptions& options,
                              const std::vector<NamedConfig>& cells, const std::string& pool_dir,
                              std::size_t kill_after_jobs, util::ShmRing* ring) {
  try {
    std::shared_ptr<grid::WorldCache> world_cache;
    if (options.world_cache_bytes > 0) {
      world_cache = std::make_shared<grid::WorldCache>(options.world_cache_bytes);
      if (!pool_dir.empty()) {
        world_cache->attach_pool(std::make_shared<grid::WorldPool>(pool_dir));
      }
    }
    std::unique_ptr<sim::SimulationWorkspace> workspace;
    std::size_t jobs_run = 0;
    std::uint64_t busy_ns = 0;

    MsgHeader header;
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> reply;
    std::vector<std::uint8_t> summary_bytes;
    for (;;) {
      if (!read_msg(fd, header, payload)) std::_Exit(0);  // coordinator gone
      if (header.type == kShutdown) {
        const grid::WorldCacheStats stats =
            world_cache != nullptr ? world_cache->stats() : grid::WorldCacheStats{};
        std::vector<std::uint8_t> wire;
        util::put_pod(wire, stats.hits);
        util::put_pod(wire, stats.misses);
        util::put_pod(wire, stats.extensions);
        util::put_pod(wire, stats.pool_hits);
        util::put_pod(wire, stats.evictions);
        util::put_pod(wire, static_cast<std::uint64_t>(stats.entries));
        util::put_pod(wire, static_cast<std::uint64_t>(stats.bytes));
        util::put_pod(wire, static_cast<std::uint64_t>(stats.peak_bytes));
        util::put_pod(wire, busy_ns);
        util::put_pod(wire, static_cast<std::uint64_t>(jobs_run));
        (void)send_msg(fd, kStats, wire.data(), wire.size());
        std::_Exit(0);
      }
      if (header.type != kAssign) {
        std::fprintf(stderr, "shard worker: unexpected message type %u\n", header.type);
        std::_Exit(1);
      }

      util::ByteReader reader(payload.data(), payload.size());
      const auto chunk_id = reader.pod<std::uint64_t>();
      const auto count = reader.pod<std::uint32_t>();
      reply.clear();
      util::put_pod(reply, chunk_id);
      util::put_pod(reply, count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto cell = reader.pod<std::uint32_t>();
        const auto replication = reader.pod<std::uint32_t>();
        const auto slot = reader.pod<std::uint32_t>();

        sim::SimulationConfig config = cells[cell].config;
        // Seeds depend only on (base_seed, replication): common random
        // numbers across cells — identical to the threaded runner.
        config.seed = rng::mix_seed(options.base_seed, replication);
        config.world_cache = world_cache;
        if (options.queue_backend.has_value()) config.queue_backend = options.queue_backend;
        sim::Simulation simulation(std::move(config));
        ReplicationSummary summary;
        const auto job_start = std::chrono::steady_clock::now();
        if (options.reuse_workspaces) {
          if (!workspace) workspace = std::make_unique<sim::SimulationWorkspace>();
          summary = summarize(simulation.run(*workspace));
        } else {
          summary = summarize(simulation.run());
        }
        busy_ns += static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                  std::chrono::steady_clock::now() - job_start)
                                                  .count());
        ++jobs_run;
        // Failure-injection hook: die mid-chunk, after a completed job but
        // before the chunk reply — the coordinator must requeue and the
        // replacement worker redo the whole chunk.
        if (kill_after_jobs > 0 && jobs_run >= kill_after_jobs) std::_Exit(9);

        util::put_pod(reply, cell);
        util::put_pod(reply, replication);
        summary_bytes.clear();
        summary.serialize(summary_bytes);
        if (slot != util::ShmRing::kNoSlot && ring != nullptr &&
            summary_bytes.size() <= ring->payload_capacity()) {
          ring->write(slot, summary_bytes.data(), summary_bytes.size());
          util::put_pod(reply, std::uint32_t{0});
        } else {
          util::put_pod(reply, static_cast<std::uint32_t>(summary_bytes.size()));
          reply.insert(reply.end(), summary_bytes.begin(), summary_bytes.end());
        }
      }
      if (!send_msg(fd, kChunkDone, reply.data(), reply.size())) std::_Exit(0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard worker: %s\n", e.what());
    std::_Exit(1);
  } catch (...) {
    std::fprintf(stderr, "shard worker: unknown error\n");
    std::_Exit(1);
  }
}

}  // namespace

ShardOptions ShardOptions::from_env(ShardOptions defaults) {
  if (auto v = env_size("DGSCHED_PROCS")) defaults.procs = *v;
  if (auto v = env_string("DGSCHED_JOURNAL")) defaults.journal_path = *v;
  if (auto v = env_string("DGSCHED_POOL")) defaults.pool_dir = *v;
  if (auto v = env_size("DGSCHED_JOURNAL_FSYNC")) defaults.fsync_journal = *v != 0;
  if (auto v = env_size("DGSCHED_SHARD_ABORT_AFTER")) defaults.abort_after_appends = *v;
  if (auto text = env_string("DGSCHED_SHARD_SELF_KILL")) {
    const std::size_t colon = text->find(':');
    bool ok = colon != std::string::npos && colon > 0 && colon + 1 < text->size();
    if (ok) {
      try {
        std::size_t used_a = 0;
        std::size_t used_b = 0;
        const std::string jobs_text = text->substr(colon + 1);
        defaults.self_kill_worker = std::stoull(text->substr(0, colon), &used_a);
        defaults.self_kill_jobs = std::stoull(jobs_text, &used_b);
        ok = used_a == colon && used_b == jobs_text.size();
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) bad_env("DGSCHED_SHARD_SELF_KILL", *text, "\"<worker>:<jobs>\"");
  }
  return defaults;
}

std::vector<CellResult> ShardedRunner::run(const std::vector<NamedConfig>& cells) {
  worker_stats_ = grid::WorldCacheStats{};
  recovered_ = 0;
  exec_stats_ = ExecutionStats{};

  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const NamedConfig& cell : cells) {
    CellResult result;
    result.label = cell.label;
    result.config = cell.config;
    result.turnaround = stats::ReplicationAnalyzer(options_.ci_level,
                                                   options_.target_relative_error,
                                                   options_.min_replications);
    results.push_back(std::move(result));
  }
  if (cells.empty()) return results;

  const std::size_t procs = std::max<std::size_t>(1, shard_.procs);
  const auto wall_start = std::chrono::steady_clock::now();

  // Journal: recover the completed prefix of an earlier (killed) run of this
  // same campaign. Journal records are written in the canonical order
  // (exp/pipeline.hpp), so the recovered prefix is always a canonical prefix
  // and feeding it back in file order cascades commits eagerly.
  std::unique_ptr<CampaignJournal> journal;
  if (!shard_.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        shard_.journal_path, CampaignJournal::campaign_signature(cells, options_));
  }

  PipelineState state(options_, results, journal.get());
  if (shard_.abort_after_appends > 0) {
    // Failure-injection hook: simulate a coordinator kill at an exact
    // journal record boundary (fsync first so the boundary is durable and
    // the test deterministic).
    state.after_append = [this, &journal] {
      if (journal->appended() >= shard_.abort_after_appends) {
        journal->sync();
        std::_Exit(3);
      }
    };
  }
  if (journal) {
    for (const CampaignJournal::Record& record : journal->recovered()) {
      state.mark_recovered(record.cell, record.replication);
    }
  }
  state.start();
  if (journal) {
    for (const CampaignJournal::Record& record : journal->recovered()) {
      state.deliver_recovered(record.cell, record.replication,
                              ReplicationSummary(record.summary));
    }
  }
  recovered_ = state.recovered();

  struct Chunk {
    std::uint64_t id = 0;
    std::vector<PipelineJob> jobs;
    std::vector<std::uint32_t> slots;  ///< Assigned ring slot per job (or kNoSlot).
  };
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    std::deque<Chunk> outstanding;  ///< Assigned chunks, in send order (FIFO replies).
    bool spawned_once = false;      ///< Self-kill arms only the first incarnation.
  };
  std::vector<Worker> workers(procs);
  // Per-worker shared-memory rings (created lazily at first spawn — always
  // before that worker's fork, so every incarnation inherits the mapping)
  // and their coordinator-side free-slot lists. Sized for two max-size
  // chunks plus a whole replication group; an exhausted free list just
  // degrades that job to inline socket transport.
  const std::size_t ring_slots = 2 * (kChunkCap + cells.size());
  const std::size_t ring_capacity = ring_payload_capacity();
  std::vector<std::unique_ptr<util::ShmRing>> rings(procs);
  std::vector<std::vector<std::uint32_t>> free_slots(procs);
  std::size_t respawns = 0;
  // Generous for flaky deaths, finite for a replication that crashes
  // deterministically (every respawn re-crashes until this throws).
  const std::size_t respawn_cap = procs * 8 + 8;

  auto spawn = [&](std::size_t w) {
    if (!rings[w]) {
      rings[w] = std::make_unique<util::ShmRing>(ring_slots, ring_capacity);
      free_slots[w].resize(ring_slots);
      std::iota(free_slots[w].begin(), free_slots[w].end(), std::uint32_t{0});
    }
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("ShardedRunner: socketpair failed");
    }
    const std::size_t kill_after =
        (!workers[w].spawned_once && w == shard_.self_kill_worker) ? shard_.self_kill_jobs : 0;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error("ShardedRunner: fork failed");
    }
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor we inherited so
      // sibling sockets don't stay half-open through us, then serve jobs.
      ::close(sv[0]);
      for (const Worker& other : workers) {
        if (other.fd >= 0) ::close(other.fd);
      }
      worker_main(sv[1], options_, cells, shard_.pool_dir, kill_after, rings[w].get());
    }
    ::close(sv[1]);
    workers[w].pid = pid;
    workers[w].fd = sv[0];
    workers[w].alive = true;
    workers[w].spawned_once = true;
  };

  auto reclaim_slots = [&](std::size_t w, const Chunk& chunk) {
    for (const std::uint32_t slot : chunk.slots) {
      if (slot == util::ShmRing::kNoSlot) continue;
      rings[w]->release(slot);
      free_slots[w].push_back(slot);
    }
  };

  auto handle_death = [&](std::size_t w) {
    Worker& worker = workers[w];
    if (worker.pid > 0) {
      int status = 0;
      (void)::waitpid(worker.pid, &status, 0);
    }
    if (worker.fd >= 0) ::close(worker.fd);
    worker.fd = -1;
    worker.pid = -1;
    worker.alive = false;
    for (const Chunk& chunk : worker.outstanding) {
      state.requeue(chunk.jobs);
      reclaim_slots(w, chunk);
    }
    worker.outstanding.clear();
    if (++respawns > respawn_cap) {
      throw std::runtime_error(
          "ShardedRunner: worker respawn limit exceeded (a replication keeps crashing its "
          "worker; see stderr for the worker's error)");
    }
  };

  // Chunk size: fixed when requested; in barrier mode the historical
  // round-proportional batch; pipelined, proportional to remaining work so
  // chunks shrink toward the campaign drain and the last stragglers are
  // single replications (no worker holds a queue of jobs another could run).
  const auto chunk_target = [&]() -> std::size_t {
    if (options_.batch_size > 0) return options_.batch_size;
    if (!options_.pipeline) {
      return std::max<std::size_t>(1, state.round_size() / (procs * 4));
    }
    return std::min(kChunkCap,
                    std::max<std::size_t>(1, state.remaining_estimate() / (procs * 4)));
  };
  // Pipelined workers are double-buffered: the next chunk is already queued
  // on the socket while the current one runs, so finishing a chunk never
  // leaves a worker idle waiting on coordinator latency. Barrier mode keeps
  // the historical one-chunk-at-a-time shape.
  const std::size_t max_outstanding = options_.pipeline ? 2 : 1;
  std::uint64_t next_chunk_id = 0;

  std::vector<std::uint8_t> wire;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> summary_bytes;

  const auto any_outstanding = [&]() {
    for (const Worker& worker : workers) {
      if (!worker.outstanding.empty()) return true;
    }
    return false;
  };

  // Assign ready jobs to workers with spare chunk capacity.
  const auto assign_ready = [&]() {
    for (std::size_t w = 0; w < procs; ++w) {
      while (!state.finished() && workers[w].outstanding.size() < max_outstanding &&
             state.has_ready()) {
        if (!workers[w].alive) spawn(w);
        Chunk chunk;
        chunk.id = next_chunk_id++;
        chunk.jobs = state.pop_chunk(chunk_target(), options_.multi_cell_replay);
        if (chunk.jobs.empty()) break;
        chunk.slots.reserve(chunk.jobs.size());
        wire.clear();
        util::put_pod(wire, chunk.id);
        util::put_pod(wire, static_cast<std::uint32_t>(chunk.jobs.size()));
        for (const PipelineJob& job : chunk.jobs) {
          std::uint32_t slot = util::ShmRing::kNoSlot;
          if (!free_slots[w].empty()) {
            slot = free_slots[w].back();
            free_slots[w].pop_back();
          }
          chunk.slots.push_back(slot);
          util::put_pod(wire, static_cast<std::uint32_t>(job.cell));
          util::put_pod(wire, static_cast<std::uint32_t>(job.replication));
          util::put_pod(wire, slot);
        }
        const int fd = workers[w].fd;
        workers[w].outstanding.push_back(std::move(chunk));
        if (!send_msg(fd, kAssign, wire.data(), wire.size())) {
          handle_death(w);
          break;
        }
      }
    }
  };

  // Receive one worker's chunk reply and feed it through the ordered commit
  // (which journals, decides, and extends the launch window as summaries
  // become foldable).
  const auto receive_reply = [&](std::size_t w) {
    Worker& worker = workers[w];
    MsgHeader header;
    if (!read_msg(worker.fd, header, payload) || header.type != kChunkDone) {
      handle_death(w);
      return;
    }
    if (worker.outstanding.empty()) {
      throw std::runtime_error("ShardedRunner: unexpected chunk reply");
    }
    Chunk chunk = std::move(worker.outstanding.front());
    worker.outstanding.pop_front();
    util::ByteReader reader(payload.data(), payload.size());
    const auto chunk_id = reader.pod<std::uint64_t>();
    const auto count = reader.pod<std::uint32_t>();
    if (chunk_id != chunk.id || count != chunk.jobs.size()) {
      throw std::runtime_error("ShardedRunner: protocol mismatch in chunk reply");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto cell = reader.pod<std::uint32_t>();
      const auto replication = reader.pod<std::uint32_t>();
      const auto size = reader.pod<std::uint32_t>();
      if (cell != chunk.jobs[i].cell || replication != chunk.jobs[i].replication) {
        throw std::runtime_error("ShardedRunner: job mismatch in chunk reply");
      }
      ReplicationSummary summary;
      if (size == 0) {
        // Summary travelled through the assigned shared-memory slot;
        // validate-then-copy (a torn slot throws, never folds).
        const std::uint32_t slot = chunk.slots[i];
        if (slot == util::ShmRing::kNoSlot) {
          throw std::runtime_error("ShardedRunner: ring reply without an assigned slot");
        }
        rings[w]->read(slot, summary_bytes);
        util::ByteReader summary_reader(summary_bytes.data(), summary_bytes.size());
        summary = ReplicationSummary::deserialize(summary_reader);
      } else {
        util::ByteReader summary_reader(reader.skip(size), size);
        summary = ReplicationSummary::deserialize(summary_reader);
      }
      if (chunk.slots[i] != util::ShmRing::kNoSlot) {
        rings[w]->release(chunk.slots[i]);
        free_slots[w].push_back(chunk.slots[i]);
      }
      state.deliver(cell, replication, std::move(summary));
    }
    if (journal && shard_.fsync_journal) journal->sync();
  };

  while (!state.finished() || any_outstanding()) {
    assign_ready();

    std::vector<::pollfd> fds;
    std::vector<std::size_t> fd_workers;
    for (std::size_t w = 0; w < procs; ++w) {
      if (workers[w].alive && !workers[w].outstanding.empty()) {
        fds.push_back(::pollfd{workers[w].fd, POLLIN, 0});
        fd_workers.push_back(w);
      }
    }
    if (fds.empty()) {
      if (state.finished()) break;
      if (!state.has_ready()) {
        // Unstopped cells always have a job queued or in flight; neither
        // here means the pipeline state is corrupt, not merely slow.
        throw std::runtime_error("ShardedRunner: stalled with no ready or in-flight jobs");
      }
      continue;  // every busy worker died; the next pass respawns
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("ShardedRunner: poll failed");
    }
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      receive_reply(fd_workers[f]);
    }
  }

  // Shutdown: collect every worker's cache stats (the cross-process
  // pool_hit_rate) and execution-lane accounting, then reap. A lane whose
  // worker was respawned reports only the surviving incarnation (a killed
  // worker's counters die with it).
  exec_stats_.lanes.assign(procs, WorkerLaneStats{});
  for (std::size_t w = 0; w < procs; ++w) {
    Worker& worker = workers[w];
    if (!worker.alive) continue;
    MsgHeader header;
    if (send_msg(worker.fd, kShutdown, nullptr, 0) && read_msg(worker.fd, header, payload) &&
        header.type == kStats && payload.size() == kStatsWords * sizeof(std::uint64_t)) {
      util::ByteReader reader(payload.data(), payload.size());
      grid::WorldCacheStats stats;
      stats.hits = reader.pod<std::uint64_t>();
      stats.misses = reader.pod<std::uint64_t>();
      stats.extensions = reader.pod<std::uint64_t>();
      stats.pool_hits = reader.pod<std::uint64_t>();
      stats.evictions = reader.pod<std::uint64_t>();
      stats.entries = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      stats.bytes = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      stats.peak_bytes = static_cast<std::size_t>(reader.pod<std::uint64_t>());
      worker_stats_.merge(stats);
      exec_stats_.lanes[w].busy_s = static_cast<double>(reader.pod<std::uint64_t>()) * 1e-9;
      exec_stats_.lanes[w].jobs = reader.pod<std::uint64_t>();
    }
    ::close(worker.fd);
    worker.fd = -1;
    int status = 0;
    (void)::waitpid(worker.pid, &status, 0);
    worker.alive = false;
  }

  exec_stats_.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  for (WorkerLaneStats& lane : exec_stats_.lanes) {
    lane.stall_s = std::max(0.0, exec_stats_.wall_s - lane.busy_s);
  }
  exec_stats_.launched = state.launched();
  exec_stats_.committed = state.committed();
  exec_stats_.discarded = state.discarded();
  exec_stats_.recovered = state.recovered();

  for (const CellResult& cell : results) {
    util::log_info("cell '", cell.label, "': mean turnaround ", cell.turnaround.stats().mean(),
                   " (", cell.replications, " reps",
                   cell.saturated() ? ", SATURATED" : "", ")");
  }
  return results;
}

}  // namespace dg::exp
