// Barrier-free campaign scheduling: continuous hand-out + ordered commit.
//
// Both runners used to execute campaigns in barrier-synchronized rounds:
// build every job of a round, run them all, fold after the barrier, decide
// which cells continue. Every round's wall clock was its slowest straggler.
// PipelineState replaces the round structure with a single state machine
// shared by the threaded and sharded runners:
//
//  * A ready queue of launchable (cell, replication) jobs, ordered the way
//    the round hand-out used to be (replication-major under multi-cell
//    replay, largest-expected-cost-first otherwise).
//  * A per-cell reorder buffer: completed summaries may arrive in any order,
//    but each is folded only when every lower replication of ITS cell has
//    committed. A CellResult's accumulators see exactly the sequential
//    cell-major / ascending-replication fold sequence, so every mean, CI,
//    and sketch stays bitwise-equal to the historical barrier fold — cells
//    are independent accumulators, so cross-cell commit interleaving cannot
//    change bits.
//  * The precision decision (saturated / precise_enough / cap) runs at each
//    per-cell commit k >= min_replications — the same k-sequence the round
//    barrier evaluated, so replication counts are reproduced exactly.
//  * Speculation: common-random-numbers seeding makes replication (c, k)
//    deterministic regardless of execution shape, so up to
//    RunOptions::speculate replications beyond the justified frontier are
//    launched eagerly; a summary arriving for a cell that already stopped is
//    discarded, and a discard cannot perturb results because it never folds.
//  * RunOptions::pipeline = false keeps the historical barrier shape (jobs
//    are extended only when the queue drains and nothing is in flight) for
//    A/B comparison — results are bit-identical either way.
//
// Journaling: when a CampaignJournal is attached, records are appended in a
// canonical round-structured order — round 0 is cell-major x ascending
// replication over the first min_replications, round t >= 1 is replication
// min+t-1 for every cell whose final count exceeds it — which is exactly the
// order the historical barrier runner produced. A cursor walks that order
// and emits each record the moment it is available, so journal bytes are
// identical across barrier/pipelined execution, any speculation window, and
// any worker/process count; a resumed journal is always a canonical prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "exp/replication_summary.hpp"
#include "exp/runner.hpp"

namespace dg::exp {

class CampaignJournal;

struct PipelineJob {
  std::size_t cell = 0;
  std::size_t replication = 0;
};

/// Not thread-safe: the threaded runner serializes access under its own
/// mutex; the sharded coordinator is single-threaded.
class PipelineState {
 public:
  /// `results` must outlive the state and already hold one initialized
  /// CellResult per cell. `journal` may be null (no journaling).
  PipelineState(const RunOptions& options, std::vector<CellResult>& results,
                CampaignJournal* journal);

  /// Invoked after every journal append (the shard fault-injection hook:
  /// sync + _Exit at an exact record boundary).
  std::function<void()> after_append;

  /// Registers a journal-recovered (cell, replication) BEFORE start(): the
  /// job is never dispatched and its record is never re-appended. Deliver
  /// the recovered summary itself via deliver_recovered() after start().
  void mark_recovered(std::size_t cell, std::size_t replication);

  /// Seeds the initial launch window. Call exactly once, after every
  /// mark_recovered().
  void start();

  /// Feeds one recovered summary through the ordered-commit path (call in
  /// journal-file order — the canonical order, so commits cascade eagerly).
  void deliver_recovered(std::size_t cell, std::size_t replication, ReplicationSummary&& summary);

  /// True when a launchable job is queued (prunes stale entries first).
  [[nodiscard]] bool has_ready();

  /// Pops up to `target` launchable jobs. When `whole_groups` is set (the
  /// multi-cell-replay hand-out) the chunk is extended so a replication
  /// group — every queued cell of the last popped replication index — is
  /// never split across workers: a group is one realized world walked in
  /// one pass.
  [[nodiscard]] std::vector<PipelineJob> pop_chunk(std::size_t target, bool whole_groups);

  /// Returns popped-but-undelivered jobs to the queue (worker death).
  void requeue(const std::vector<PipelineJob>& jobs);

  /// Delivers one completed summary: discarded if the cell already stopped
  /// below it, otherwise buffered and committed (folded) as soon as its
  /// per-cell predecessors have committed, cascading decisions / window
  /// extensions / journal emission.
  void deliver(std::size_t cell, std::size_t replication, ReplicationSummary&& summary);

  /// Every cell stopped (precise, saturated, or capped) with all committed.
  [[nodiscard]] bool finished() const noexcept { return stopped_cells_ == cells_.size(); }

  /// Jobs handed out and not yet delivered.
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  /// Queued + in-flight jobs — a lower bound on remaining work, used to
  /// shrink chunk sizes toward the campaign drain.
  [[nodiscard]] std::size_t remaining_estimate() const noexcept {
    return ready_.size() + in_flight_;
  }
  /// Jobs pushed by the latest barrier-mode refill (batch sizing).
  [[nodiscard]] std::size_t round_size() const noexcept { return round_size_; }

  [[nodiscard]] std::uint64_t launched() const noexcept { return launched_; }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] std::uint64_t discarded() const noexcept { return discarded_; }
  [[nodiscard]] std::uint64_t recovered() const noexcept { return recovered_; }

 private:
  struct ReadyEntry {
    double cost = 0.0;
    std::size_t replication = 0;
    std::size_t cell = 0;
    std::uint64_t seq = 0;
  };
  struct ReadyOrder {
    bool multi_cell;
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (multi_cell) {
        // Min-heap on (replication, cell): replication-major, cells in build
        // order within a group — the historical multi-cell round order.
        if (a.replication != b.replication) return a.replication > b.replication;
        return a.cell > b.cell;
      }
      // Max-heap on expected cost, FIFO ties — the historical cost-major
      // round order.
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.seq > b.seq;
    }
  };
  struct Cell {
    std::size_t allowed = 0;    ///< replications pushed to the ready queue
    std::size_t committed = 0;  ///< replications folded
    std::size_t final_reps = 0;
    bool stopped = false;
    /// Reorder buffer: delivered-but-uncommitted summaries, plus (journal
    /// mode) committed summaries awaiting canonical-order emission.
    std::map<std::size_t, ReplicationSummary> buffer;
  };

  void push_range(std::size_t c, std::size_t to);
  void extend(std::size_t c);
  void decide(std::size_t c);
  void cascade(std::size_t c);
  void deliver_impl(std::size_t cell, std::size_t replication, ReplicationSummary&& summary,
                    bool from_recovery);
  void maybe_refill();
  void prune_stale();
  [[nodiscard]] bool is_recovered(std::size_t c, std::size_t r) const {
    return recovered_set_.count({c, r}) != 0;
  }
  void pump_journal();

  const RunOptions& options_;
  std::vector<CellResult>& results_;
  CampaignJournal* journal_;
  std::vector<Cell> cells_;
  std::vector<double> cost_;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyOrder> ready_;
  std::set<std::pair<std::size_t, std::size_t>> recovered_set_;
  std::size_t stopped_cells_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t round_size_ = 0;
  bool first_round_ = true;
  std::uint64_t seq_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t recovered_ = 0;
  // Canonical journal cursor: (round, cell, rep-within-round-0).
  std::size_t cursor_round_ = 0;
  std::size_t cursor_cell_ = 0;
  std::size_t cursor_rep_ = 0;
  bool journal_done_ = false;
};

}  // namespace dg::exp
