#include "exp/steady_state.hpp"

#include <cmath>
#include <vector>

namespace dg::exp {

SteadyStateResult run_steady_state(sim::SimulationConfig config,
                                   const SteadyStateOptions& options) {
  config.workload.num_bots = options.num_bots;
  config.warmup_bots = 0;  // truncation is data-driven here

  SteadyStateResult result;
  result.simulation = sim::Simulation(config).run();
  result.saturated = result.simulation.saturated;

  std::vector<double> turnarounds;
  turnarounds.reserve(result.simulation.bots.size());
  for (const sim::BotRecord& bot : result.simulation.bots) {
    turnarounds.push_back(bot.turnaround);
  }

  const stats::MserResult truncation =
      stats::mser5_truncation(turnarounds, options.mser_batch);
  result.truncated_bots = truncation.truncation_index;

  stats::BatchMeans batches(options.batch_size);
  for (std::size_t i = truncation.truncation_index; i < turnarounds.size(); ++i) {
    batches.add(turnarounds[i]);
  }
  // Coarsen until batch means decorrelate (or batches run out).
  while (std::fabs(batches.lag1_autocorrelation()) > options.max_lag1 &&
         batches.completed_batches() >= 2 * options.min_batches) {
    batches.coarsen();
  }

  result.measured_bots = turnarounds.size() - truncation.truncation_index;
  result.batches = batches.completed_batches();
  result.final_batch_size = batches.batch_size();
  result.lag1_autocorrelation = batches.lag1_autocorrelation();
  result.turnaround = batches.interval(options.ci_level);
  return result;
}

}  // namespace dg::exp
