// Steady-state estimation from one long run (batch means + MSER warmup).
//
// The paper (and ExperimentRunner) use independent replications; the classic
// alternative simulates one long run, deletes the initial transient with
// MSER-5, and builds the confidence interval from batch means, coarsening
// batches until they decorrelate. This estimator is cheaper per unit of
// precision for stable systems and is exposed both as a library facility and
// through the `methodology` bench comparing the two approaches.
#pragma once

#include "sim/simulation.hpp"
#include "stats/batch_means.hpp"
#include "stats/confidence.hpp"
#include "stats/mser.hpp"

namespace dg::exp {

struct SteadyStateOptions {
  /// Bags simulated in the single long run (overrides the config's count).
  std::size_t num_bots = 600;
  /// Bags per batch before decorrelation coarsening.
  std::size_t batch_size = 20;
  /// MSER pre-batching (MSER-5 by default).
  std::size_t mser_batch = 5;
  double ci_level = 0.95;
  /// Coarsen (double batch size) while |lag-1 autocorrelation| exceeds this
  /// and at least `min_batches` remain.
  double max_lag1 = 0.2;
  std::size_t min_batches = 10;
};

struct SteadyStateResult {
  /// Bags deleted as warmup (MSER truncation).
  std::size_t truncated_bots = 0;
  /// Bags contributing to the estimate.
  std::size_t measured_bots = 0;
  std::size_t batches = 0;
  std::size_t final_batch_size = 0;
  double lag1_autocorrelation = 0.0;
  stats::ConfidenceInterval turnaround;
  bool saturated = false;
  /// The underlying simulation result (per-bag records etc.).
  sim::SimulationResult simulation;
};

/// Runs `config` once with `options.num_bots` bags and produces a
/// steady-state mean-turnaround estimate.
[[nodiscard]] SteadyStateResult run_steady_state(sim::SimulationConfig config,
                                                 const SteadyStateOptions& options = {});

}  // namespace dg::exp
