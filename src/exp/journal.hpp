// Append-only completion journal: a killed campaign resumes, not recomputes.
//
// The sharded runner (exp/shard.hpp) appends one record per finished
// replication — (cell, replication, serialized ReplicationSummary) — to a
// journal file, fsync'd after each received chunk. On reopen, the journal
// scans the longest valid prefix (every record checksummed), truncates any
// torn tail left by a kill mid-append, and hands the recovered records back;
// the runner folds them into its round slots instead of dispatching those
// jobs again. Because the fold order is build order regardless of where a
// summary came from (a worker message or the journal), a resumed campaign's
// output is byte-identical to an uninterrupted run.
//
// File layout:
//   header: magic "DGJL" + format version (u32) + campaign signature (u64)
//   record: payload_size u32 | cell u32 | replication u32 | checksum u64
//           | payload (serialized ReplicationSummary)
// where checksum = fnv1a64 over (cell, replication, payload). The campaign
// signature hashes the cell labels, cell count, and the precision-relevant
// RunOptions: a journal replayed against a *different* campaign is discarded
// (fresh start, with a warning) rather than folded into the wrong cells. A
// bad magic or version is an error — that file is not ours to overwrite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/replication_summary.hpp"

namespace dg::exp {

struct NamedConfig;
struct RunOptions;

class CampaignJournal {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Identity hash binding a journal to one campaign: cell labels and count,
  /// base seed, replication bounds, CI level, and target relative error.
  /// Deliberately not the full configs — label lists are what drivers vary.
  [[nodiscard]] static std::uint64_t campaign_signature(const std::vector<NamedConfig>& cells,
                                                       const RunOptions& options);

  struct Record {
    std::uint32_t cell = 0;
    std::uint32_t replication = 0;
    ReplicationSummary summary;
  };

  /// Opens `path` for appending, creating it (with a fresh header) when
  /// absent. An existing file is scanned: its valid record prefix becomes
  /// recovered() and a torn tail is truncated away. A signature mismatch
  /// logs a warning and restarts the file; a magic/version mismatch throws
  /// std::runtime_error (the file is not a journal of this format).
  CampaignJournal(std::string path, std::uint64_t signature);

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;
  ~CampaignJournal();

  /// Records recovered from the file at open (empty for a fresh journal).
  [[nodiscard]] const std::vector<Record>& recovered() const noexcept { return recovered_; }

  /// Appends one completed replication. Buffered by the OS until sync().
  void append(std::uint32_t cell, std::uint32_t replication, const ReplicationSummary& summary);

  /// fsync — records appended before a sync survive a kill.
  void sync();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Records appended through this handle (excludes recovered ones).
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::vector<Record> recovered_;
  std::uint64_t appended_ = 0;
  std::vector<std::uint8_t> scratch_;  ///< Reused append buffer.
};

}  // namespace dg::exp
