// Robustness campaign: risk-cliff sweeps and seed-sensitivity analysis.
//
// The paper evaluates policies on fixed (grid, intensity) panels; the
// robustness campaign instead asks where each policy's tail *collapses*: it
// sweeps (machine availability x checkpoint-server availability x
// utilization x replication threshold) per policy — optionally under the
// adversarial scenario director (sim/adversary.hpp) — and reports
// heatmap-ready rows of mean / p50 / p95 / p99 turnaround plus the
// degradation of each cell's p95 relative to the mildest corner of its
// (policy, utilization, threshold) slice. A second mode re-runs one cell
// under many base seeds and reports the inter-seed spread of the p95 — how
// much of an observed "cliff" is stochastic luck.
//
// Everything here is deterministic: cell expansion order is fixed, the sweep
// reuses exp::ExperimentRunner (post-barrier build-order folds), and the
// seed-sensitivity fan-out writes into preallocated per-seed slots folded in
// ascending seed index — results are bit-identical across DGSCHED_THREADS /
// DGSCHED_BATCH / DGSCHED_MULTI_CELL / world-cache on-off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "sched/policy.hpp"
#include "sim/simulation.hpp"

namespace dg::exp {

/// The campaign's sweep axes. Defaults give the full grid (3 x 3 x 2 x 2
/// per policy = 36 cells/policy); smoke() is the CI-sized reduction.
struct CampaignAxes {
  /// Machine availability axis (AvailabilityModel::from_availability).
  std::vector<double> machine_availabilities{0.98, 0.75, 0.50};
  /// Checkpoint-server availability axis; 1.0 = the paper's reliable server
  /// (faults disabled), otherwise MTBF = a / (1 - a) * server_mttr.
  std::vector<double> server_availabilities{1.0, 0.95, 0.70};
  /// Server mean repair time, seconds (fixed; the axis varies MTBF).
  double server_mttr = 3600.0;
  /// Offered-load axis (arrival rate from utilization via the paper's Eq. 1).
  std::vector<double> utilizations{0.5, 0.9};
  /// WQR replication-threshold axis.
  std::vector<int> replication_thresholds{2, 3};
  /// Policies swept (each gets the full grid).
  std::vector<sched::PolicyKind> policies{
      sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin,
      sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom};
  grid::Heterogeneity heterogeneity = grid::Heterogeneity::kHet;
  double granularity = 5000.0;
  double bag_size = 2.5e6;
  std::size_t num_bots = 24;
  std::size_t warmup_bots = 2;
  /// Adversarial director applied to every cell (disabled scenario = plain
  /// stochastic stress only).
  sim::AdversarialScenario adversary{};

  /// CI-sized grid: the two extreme corners of each axis, two policies.
  [[nodiscard]] static CampaignAxes smoke();
};

/// One expanded cell of the campaign grid.
struct CampaignCell {
  std::string label;
  sched::PolicyKind policy = sched::PolicyKind::kFcfsShare;
  double machine_availability = 1.0;
  double server_availability = 1.0;
  double utilization = 0.5;
  int replication_threshold = 2;
  sim::SimulationConfig config;
};

/// Expands the axes into cells in a fixed order: policy-major, then machine
/// availability, server availability, utilization, threshold — each in the
/// axes' listed order. Throws std::invalid_argument on empty or
/// out-of-range axes.
[[nodiscard]] std::vector<CampaignCell> expand_campaign(const CampaignAxes& axes);

/// One heatmap row: the cell's axes plus its folded tail metrics and the
/// p95 degradation versus the baseline corner of its slice.
struct RiskCliffRow {
  std::string label;
  std::string policy;
  double machine_availability = 1.0;
  double server_availability = 1.0;
  double utilization = 0.5;
  int replication_threshold = 2;
  double mean_turnaround = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double wasted_fraction = 0.0;
  /// p95 / (p95 of the baseline cell) — the baseline is the same (policy,
  /// utilization, threshold) at the highest machine availability and highest
  /// server availability in the grid. 1.0 for the baseline itself.
  double degradation_vs_baseline = 1.0;
  std::size_t replications = 0;
  bool saturated = false;
};

/// Joins expanded cells with their ExperimentRunner results (same order/
/// length) into heatmap rows, computing each row's degradation against its
/// slice baseline. Deterministic: row order equals cell order.
[[nodiscard]] std::vector<RiskCliffRow> risk_cliff_rows(const std::vector<CampaignCell>& cells,
                                                        const std::vector<CellResult>& results);

/// Inter-seed dispersion of one cell: the same configuration run once per
/// base seed (seed i = mix_seed(base_seed, i)).
struct SeedSpreadReport {
  std::size_t seeds = 0;
  /// Per-seed p95 turnaround / mean turnaround, in seed-index order.
  std::vector<double> p95;
  std::vector<double> mean_turnaround;
  std::size_t saturated_seeds = 0;
  // Spread statistics over the per-seed p95 values.
  double p95_min = 0.0;
  double p95_median = 0.0;
  double p95_max = 0.0;
  double p95_mean = 0.0;
  double p95_stddev = 0.0;
  /// Coefficient of variation: stddev / mean (0 when the mean is 0).
  double p95_cv = 0.0;
  /// max / min (infinity when the min is 0 and the max is not).
  double p95_max_over_min = 1.0;
};

/// Runs `config` once per seed (num_seeds >= 2, else std::invalid_argument)
/// across options.threads workers, one reusable workspace per worker, and
/// folds the spread in ascending seed index — bit-identical for any thread
/// count. options.base_seed anchors the seed sequence; the cell's own
/// world_cache setting is honored per run.
[[nodiscard]] SeedSpreadReport seed_sensitivity(const sim::SimulationConfig& config,
                                                const RunOptions& options, std::size_t num_seeds);

/// Campaign-level knobs, env-overridable with the DGSCHED_* convention.
struct CampaignOptions {
  /// Seeds for the seed-sensitivity pass (DGSCHED_CAMPAIGN_SEEDS, >= 2).
  std::size_t seeds = 12;
  /// Reduced grid for CI (DGSCHED_CAMPAIGN_GRID=smoke|full).
  bool smoke = false;
  /// Adversarial director on/off for every cell (DGSCHED_ADVERSARY=0|1).
  bool adversary = true;

  [[nodiscard]] static CampaignOptions from_env(CampaignOptions defaults);
  [[nodiscard]] static CampaignOptions from_env() { return from_env(CampaignOptions{}); }
};

}  // namespace dg::exp
