#include "exp/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exp/runner.hpp"
#include "rng/random_stream.hpp"
#include "rng/splitmix64.hpp"
#include "util/logging.hpp"

namespace dg::exp {

namespace {

constexpr char kMagic[4] = {'D', 'G', 'J', 'L'};

struct JournalHeader {
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t signature = 0;
};
static_assert(sizeof(JournalHeader) == 16);

struct RecordHeader {
  std::uint32_t payload_size = 0;
  std::uint32_t cell = 0;
  std::uint32_t replication = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(RecordHeader) == 24);

[[nodiscard]] std::uint64_t record_checksum(std::uint32_t cell, std::uint32_t replication,
                                            const std::uint8_t* payload, std::size_t size) {
  std::uint64_t h = util::fnv1a64_bytes(&cell, sizeof(cell));
  h = util::fnv1a64_bytes(&replication, sizeof(replication), h);
  return util::fnv1a64_bytes(payload, size, h);
}

void write_all(int fd, const void* data, std::size_t size, const std::string& path) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("CampaignJournal: write failed on " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes; returns false on EOF or short read (a torn
/// tail), throws on a real I/O error.
[[nodiscard]] bool read_exact(int fd, void* data, std::size_t size, const std::string& path) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("CampaignJournal: read failed on " + path);
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint64_t CampaignJournal::campaign_signature(const std::vector<NamedConfig>& cells,
                                                 const RunOptions& options) {
  std::uint64_t h = rng::fnv1a64("campaign.journal");
  h = rng::mix_seed(h, cells.size());
  for (const NamedConfig& cell : cells) h = rng::mix_seed(h, rng::fnv1a64(cell.label));
  h = rng::mix_seed(h, options.base_seed);
  h = rng::mix_seed(h, options.min_replications);
  h = rng::mix_seed(h, options.max_replications);
  h = rng::mix_seed(h, std::bit_cast<std::uint64_t>(options.ci_level));
  h = rng::mix_seed(h, std::bit_cast<std::uint64_t>(options.target_relative_error));
  return h;
}

CampaignJournal::CampaignJournal(std::string path, std::uint64_t signature)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw std::runtime_error("CampaignJournal: cannot open " + path_);

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("CampaignJournal: fstat failed on " + path_);
  }

  bool fresh = st.st_size == 0;
  if (!fresh) {
    JournalHeader header;
    if (static_cast<std::size_t>(st.st_size) < sizeof(header) ||
        !read_exact(fd_, &header, sizeof(header), path_)) {
      // A kill between open and the first header write can leave a short
      // file; it carries no records, so restart it.
      fresh = true;
    } else if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0 ||
               header.version != kFormatVersion) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("CampaignJournal: " + path_ +
                               " is not a campaign journal of this format");
    } else if (header.signature != signature) {
      util::log_info("journal '", path_, "': campaign signature mismatch, starting fresh");
      fresh = true;
    }
  }

  if (fresh) {
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("CampaignJournal: cannot reset " + path_);
    }
    JournalHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kFormatVersion;
    header.signature = signature;
    write_all(fd_, &header, sizeof(header), path_);
    return;
  }

  // Scan the valid record prefix; the first torn or corrupt record marks the
  // recovery point, and everything from there on is truncated away so
  // appends continue from a clean boundary.
  std::uint64_t valid_end = sizeof(JournalHeader);
  std::vector<std::uint8_t> payload;
  for (;;) {
    RecordHeader record;
    if (!read_exact(fd_, &record, sizeof(record), path_)) break;
    payload.resize(record.payload_size);
    if (!read_exact(fd_, payload.data(), payload.size(), path_)) break;
    if (record_checksum(record.cell, record.replication, payload.data(), payload.size()) !=
        record.checksum) {
      break;
    }
    try {
      util::ByteReader reader(payload.data(), payload.size());
      Record recovered;
      recovered.cell = record.cell;
      recovered.replication = record.replication;
      recovered.summary = ReplicationSummary::deserialize(reader);
      if (!reader.exhausted()) break;
      recovered_.push_back(std::move(recovered));
    } catch (const std::runtime_error&) {
      break;
    }
    valid_end += sizeof(record) + payload.size();
  }
  if (valid_end != static_cast<std::uint64_t>(st.st_size)) {
    if (::ftruncate(fd_, static_cast<::off_t>(valid_end)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("CampaignJournal: cannot truncate torn tail of " + path_);
    }
    util::log_info("journal '", path_, "': recovered ", recovered_.size(),
                   " records, truncated torn tail");
  }
  if (::lseek(fd_, static_cast<::off_t>(valid_end), SEEK_SET) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("CampaignJournal: lseek failed on " + path_);
  }
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CampaignJournal::append(std::uint32_t cell, std::uint32_t replication,
                             const ReplicationSummary& summary) {
  scratch_.clear();
  summary.serialize(scratch_);
  RecordHeader record;
  record.payload_size = static_cast<std::uint32_t>(scratch_.size());
  record.cell = cell;
  record.replication = replication;
  record.checksum = record_checksum(cell, replication, scratch_.data(), scratch_.size());
  write_all(fd_, &record, sizeof(record), path_);
  write_all(fd_, scratch_.data(), scratch_.size(), path_);
  ++appended_;
}

void CampaignJournal::sync() {
  if (::fsync(fd_) != 0) throw std::runtime_error("CampaignJournal: fsync failed on " + path_);
}

}  // namespace dg::exp
