#include "exp/paper.hpp"

#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace dg::exp {

namespace {

std::string panel_name(const FigureSpec& spec, const PanelSpec& panel) {
  return grid::to_string(panel.heterogeneity) + "-" +
         grid::to_string(spec.availability) + " / " +
         workload::to_string(panel.intensity) + " intensity";
}

std::string cell_label(const FigureSpec& spec, const PanelSpec& panel, double granularity,
                       sched::PolicyKind policy) {
  std::ostringstream oss;
  oss << grid::to_string(panel.heterogeneity) << "-" << grid::to_string(spec.availability) << "/"
      << workload::to_string(panel.intensity) << "/g=" << granularity << "/"
      << sched::to_string(policy);
  return oss.str();
}

}  // namespace

FigureSpec figure1_spec() {
  FigureSpec spec;
  spec.title = "Figure 1: results for high availability configurations";
  spec.availability = grid::AvailabilityLevel::kHigh;
  spec.panels = {{grid::Heterogeneity::kHom, workload::Intensity::kLow},
                 {grid::Heterogeneity::kHet, workload::Intensity::kLow},
                 {grid::Heterogeneity::kHom, workload::Intensity::kHigh},
                 {grid::Heterogeneity::kHet, workload::Intensity::kHigh}};
  return spec;
}

FigureSpec figure2_spec() {
  FigureSpec spec = figure1_spec();
  spec.title = "Figure 2: results for low availability configurations";
  spec.availability = grid::AvailabilityLevel::kLow;
  return spec;
}

FigureSpec unreported_spec() {
  FigureSpec spec;
  spec.title = "Unreported configurations: medium availability / medium intensity";
  spec.availability = grid::AvailabilityLevel::kMed;
  spec.panels = {{grid::Heterogeneity::kHom, workload::Intensity::kMed},
                 {grid::Heterogeneity::kHet, workload::Intensity::kMed}};
  return spec;
}

std::vector<NamedConfig> figure_cells(const FigureSpec& spec) {
  std::vector<NamedConfig> cells;
  cells.reserve(spec.panels.size() * spec.granularities.size() * spec.policies.size());
  for (const PanelSpec& panel : spec.panels) {
    const grid::GridConfig grid_config =
        grid::GridConfig::preset(panel.heterogeneity, spec.availability);
    for (double granularity : spec.granularities) {
      const workload::WorkloadConfig workload_config = sim::make_paper_workload(
          grid_config, granularity, panel.intensity, spec.num_bots, spec.bag_size);
      for (sched::PolicyKind policy : spec.policies) {
        sim::SimulationConfig config;
        config.grid = grid_config;
        config.workload = workload_config;
        config.policy = policy;
        config.warmup_bots = spec.warmup_bots;
        cells.push_back(NamedConfig{cell_label(spec, panel, granularity, policy), config});
      }
    }
  }
  return cells;
}

void render_figure(const FigureSpec& spec, const std::vector<CellResult>& results,
                   std::ostream& os, std::ostream* csv) {
  os << "=== " << spec.title << " ===\n";
  os << "(mean BoT turnaround [s] with 95% CI half-width; 'SAT' = saturated:\n"
     << " bags left incomplete at the horizon, value is a lower bound)\n\n";

  std::size_t index = 0;
  util::Table csv_table({"panel", "heterogeneity", "availability", "intensity", "granularity",
                         "policy", "mean_turnaround", "ci_half_width", "replications",
                         "saturated", "mean_waiting", "mean_makespan", "utilization",
                         "wasted_fraction", "turnaround_p50", "turnaround_p95", "turnaround_p99",
                         "slowdown_p95", "slowdown_p99"});
  for (const PanelSpec& panel : spec.panels) {
    std::vector<std::string> header{"granularity [s]"};
    for (sched::PolicyKind policy : spec.policies) header.push_back(sched::to_string(policy));
    util::Table table(std::move(header));
    for (double granularity : spec.granularities) {
      std::vector<std::string> row{util::format_double(granularity, 0)};
      for (sched::PolicyKind policy : spec.policies) {
        const CellResult& cell = results.at(index++);
        const stats::ConfidenceInterval ci = cell.turnaround_ci();
        std::string text = util::format_double(ci.mean, 0);
        if (cell.saturated()) {
          text = ">=" + text + " SAT";
        } else {
          text += " +-" + util::format_double(ci.half_width, 0);
        }
        row.push_back(text);

        csv_table.add_row({panel_name(spec, panel), grid::to_string(panel.heterogeneity),
                           grid::to_string(spec.availability),
                           workload::to_string(panel.intensity),
                           util::format_double(granularity, 0), sched::to_string(policy),
                           util::format_double(ci.mean, 1), util::format_double(ci.half_width, 1),
                           std::to_string(cell.replications),
                           cell.saturated() ? "1" : "0",
                           util::format_double(cell.waiting.mean(), 1),
                           util::format_double(cell.makespan.mean(), 1),
                           util::format_double(cell.utilization.mean(), 3),
                           util::format_double(cell.wasted_fraction.mean(), 3),
                           util::format_double(cell.turnaround_tail.quantile(0.50), 1),
                           util::format_double(cell.turnaround_tail.quantile(0.95), 1),
                           util::format_double(cell.turnaround_tail.quantile(0.99), 1),
                           util::format_double(cell.slowdown_tail.quantile(0.95), 2),
                           util::format_double(cell.slowdown_tail.quantile(0.99), 2)});
      }
      table.add_row(std::move(row));
    }
    os << "--- " << panel_name(spec, panel) << " ---\n";
    table.render(os);
    os << "\n";
  }
  if (csv != nullptr) csv_table.write_csv(*csv);
}

}  // namespace dg::exp
