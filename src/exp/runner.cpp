#include "exp/runner.hpp"

#include <cstdlib>
#include <future>
#include <string>
#include <utility>

#include "rng/splitmix64.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace dg::exp {

namespace {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::optional<double> env_double(const char* name) {
  if (auto text = env_string(name)) return std::stod(*text);
  return std::nullopt;
}

std::optional<std::size_t> env_size(const char* name) {
  if (auto text = env_string(name)) return static_cast<std::size_t>(std::stoull(*text));
  return std::nullopt;
}

}  // namespace

RunOptions RunOptions::from_env(RunOptions defaults) {
  if (auto v = env_size("DGSCHED_MIN_REPS")) defaults.min_replications = *v;
  if (auto v = env_size("DGSCHED_MAX_REPS")) defaults.max_replications = *v;
  if (auto v = env_double("DGSCHED_TRE")) defaults.target_relative_error = *v;
  if (auto v = env_size("DGSCHED_THREADS")) defaults.threads = *v;
  if (auto v = env_size("DGSCHED_SEED")) defaults.base_seed = *v;
  if (defaults.max_replications < defaults.min_replications) {
    defaults.max_replications = defaults.min_replications;
  }
  return defaults;
}

std::optional<std::size_t> env_num_bots() { return env_size("DGSCHED_BOTS"); }

std::vector<CellResult> ExperimentRunner::run(const std::vector<NamedConfig>& cells) {
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const NamedConfig& cell : cells) {
    CellResult result;
    result.label = cell.label;
    result.config = cell.config;
    result.turnaround = stats::ReplicationAnalyzer(options_.ci_level,
                                                   options_.target_relative_error,
                                                   options_.min_replications);
    results.push_back(std::move(result));
  }

  util::ThreadPool pool(options_.threads);
  struct Pending {
    std::size_t cell_index;
    std::future<sim::SimulationResult> future;
  };

  auto launch = [&](std::size_t cell_index, std::size_t replication) {
    sim::SimulationConfig config = results[cell_index].config;
    // Seeds depend only on (base_seed, replication): common random numbers
    // across cells that differ only in scheduling policy.
    config.seed = rng::mix_seed(options_.base_seed, replication);
    return Pending{cell_index,
                   pool.submit([config]() { return sim::Simulation(config).run(); })};
  };

  // Round 0: the minimum replications for every cell, all in flight at once.
  std::vector<std::size_t> reps_launched(cells.size(), 0);
  std::vector<Pending> in_flight;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < options_.min_replications; ++r) {
      in_flight.push_back(launch(c, reps_launched[c]++));
    }
  }

  // Subsequent rounds: whichever cells are still imprecise get one more
  // replication each, until precise or capped.
  while (!in_flight.empty()) {
    std::vector<Pending> next_round;
    for (Pending& pending : in_flight) {
      const sim::SimulationResult sim_result = pending.future.get();
      CellResult& cell = results[pending.cell_index];
      cell.turnaround.add(sim_result.turnaround.mean());
      cell.waiting.add(sim_result.waiting.mean());
      cell.makespan.add(sim_result.makespan.mean());
      cell.utilization.add(sim_result.utilization);
      cell.wasted_fraction.add(sim_result.wasted_fraction());
      cell.lost_work.add(sim_result.lost_work);
      cell.transfer_retries.add(static_cast<double>(sim_result.faults.transfer_retries));
      cell.replicas_degraded.add(static_cast<double>(sim_result.faults.replicas_degraded));
      cell.server_downtime.add(sim_result.faults.server_downtime);
      ++cell.replications;
      if (sim_result.saturated) ++cell.saturated_replications;
    }
    in_flight.clear();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      CellResult& cell = results[c];
      const bool all_back = cell.replications == reps_launched[c];
      if (!all_back) continue;
      // Saturated cells never converge (censored means); stop at minimum.
      if (cell.saturated()) continue;
      if (cell.turnaround.precise_enough()) continue;
      if (reps_launched[c] >= options_.max_replications) continue;
      next_round.push_back(launch(c, reps_launched[c]++));
    }
    in_flight = std::move(next_round);
  }

  for (const CellResult& cell : results) {
    util::log_info("cell '", cell.label, "': mean turnaround ", cell.turnaround.stats().mean(),
                   " (", cell.replications, " reps",
                   cell.saturated() ? ", SATURATED" : "", ")");
  }
  return results;
}

}  // namespace dg::exp
