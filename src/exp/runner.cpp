#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/pipeline.hpp"
#include "exp/replication_summary.hpp"
#include "rng/splitmix64.hpp"
#include "sim/workspace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace dg::exp {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

void bad_env(const char* name, const std::string& text, const char* expected) {
  throw std::invalid_argument(std::string(name) + ": expected " + expected + ", got \"" + text +
                              "\"");
}

std::optional<double> env_double(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*text, &consumed);
    if (consumed != text->size()) bad_env(name, *text, "a number");
    return value;
  } catch (const std::invalid_argument&) {
    bad_env(name, *text, "a number");
  } catch (const std::out_of_range&) {
    bad_env(name, *text, "a number in double range");
  }
}

std::optional<std::size_t> env_size(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  if (text->front() == '-') bad_env(name, *text, "a non-negative integer");
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(*text, &consumed);
    if (consumed != text->size()) bad_env(name, *text, "a non-negative integer");
    return static_cast<std::size_t>(value);
  } catch (const std::invalid_argument&) {
    bad_env(name, *text, "a non-negative integer");
  } catch (const std::out_of_range&) {
    bad_env(name, *text, "a non-negative integer in range");
  }
}

RunOptions RunOptions::from_env(RunOptions defaults) {
  if (auto v = env_size("DGSCHED_MIN_REPS")) defaults.min_replications = *v;
  if (auto v = env_size("DGSCHED_MAX_REPS")) defaults.max_replications = *v;
  if (auto v = env_double("DGSCHED_TRE")) defaults.target_relative_error = *v;
  if (auto v = env_size("DGSCHED_THREADS")) defaults.threads = *v;
  if (auto v = env_size("DGSCHED_SEED")) defaults.base_seed = *v;
  if (auto v = env_size("DGSCHED_WORKSPACES")) defaults.reuse_workspaces = *v != 0;
  if (auto v = env_size("DGSCHED_BATCH")) defaults.batch_size = *v;
  if (auto v = env_size("DGSCHED_WORLD_CACHE")) defaults.world_cache_bytes = *v;
  if (auto v = env_size("DGSCHED_MULTI_CELL")) defaults.multi_cell_replay = *v != 0;
  if (auto v = env_size("DGSCHED_PIPELINE")) defaults.pipeline = *v != 0;
  if (auto v = env_size("DGSCHED_SPECULATE")) defaults.speculate = *v;
  if (auto text = env_string("DGSCHED_QUEUE")) {
    const auto backend = des::parse_queue_backend(*text);
    if (!backend.has_value()) bad_env("DGSCHED_QUEUE", *text, "\"heap4\" or \"calendar\"");
    defaults.queue_backend = *backend;
  }
  if (defaults.max_replications < defaults.min_replications) {
    defaults.max_replications = defaults.min_replications;
  }
  return defaults;
}

std::optional<std::size_t> env_num_bots() { return env_size("DGSCHED_BOTS"); }

std::vector<CellResult> ExperimentRunner::run(const std::vector<NamedConfig>& cells) {
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const NamedConfig& cell : cells) {
    CellResult result;
    result.label = cell.label;
    result.config = cell.config;
    result.turnaround = stats::ReplicationAnalyzer(options_.ci_level,
                                                   options_.target_relative_error,
                                                   options_.min_replications);
    results.push_back(std::move(result));
  }

  exec_stats_ = ExecutionStats{};
  if (cells.empty()) return results;

  // Workspaces before the pool: jobs reference them, and the pool's
  // destructor (which drains any still-queued jobs on an exceptional unwind)
  // must run first.
  std::vector<std::unique_ptr<sim::SimulationWorkspace>> workspaces;
  util::ThreadPool pool(options_.threads);
  workspaces.resize(pool.size());

  // Runs one replication on the calling pool worker, through that worker's
  // lazily-created workspace (or fresh construction when reuse is off / the
  // caller is not a pool thread), and writes its summary into `slot`.
  auto run_one = [&](const PipelineJob& job, ReplicationSummary& slot) {
    sim::SimulationConfig config = results[job.cell].config;
    // Seeds depend only on (base_seed, replication): common random numbers
    // across cells that differ only in scheduling policy.
    config.seed = rng::mix_seed(options_.base_seed, job.replication);
    // Cells sharing a replication seed replay one cached world realization
    // (bit-identical to live sampling; null cache = live processes).
    config.world_cache = world_cache_;
    if (options_.queue_backend.has_value()) config.queue_backend = options_.queue_backend;
    sim::Simulation simulation(std::move(config));
    sim::SimulationWorkspace* workspace = nullptr;
    if (options_.reuse_workspaces) {
      const std::size_t worker = util::ThreadPool::current_worker_index();
      if (worker < workspaces.size()) {
        if (!workspaces[worker]) {
          workspaces[worker] = std::make_unique<sim::SimulationWorkspace>();
        }
        workspace = workspaces[worker].get();
      }
    }
    slot = workspace != nullptr ? summarize(simulation.run(*workspace))
                                : summarize(simulation.run());
  };

  // Barrier-free execution (exp/pipeline.hpp): PipelineState owns the ready
  // queue, the per-cell reorder/commit buffers, the precision decisions, and
  // the speculation window. pool.size() long-lived worker loops pull jobs
  // and deliver summaries under one mutex; the fold itself happens inside
  // deliver() in canonical per-cell order, so accumulator sequences are
  // bitwise-equal to the historical round-barrier fold no matter which
  // worker finishes when. With options_.pipeline off the state only grants
  // new jobs once the queue drains and nothing is in flight — the historical
  // round shape, kept for A/B comparison.
  PipelineState state(options_, results, nullptr);
  state.start();

  std::mutex mutex;
  std::condition_variable ready_cv;
  std::exception_ptr error;
  std::vector<WorkerLaneStats> lanes(pool.size());
  const auto wall_start = std::chrono::steady_clock::now();
  const auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  auto worker_loop = [&] {
    const std::size_t lane = util::ThreadPool::current_worker_index();
    WorkerLaneStats local;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      while (!error && !state.finished() && !state.has_ready()) {
        const auto wait_start = std::chrono::steady_clock::now();
        ready_cv.wait(lock);
        local.stall_s += seconds_since(wait_start);
      }
      if (error || state.finished()) break;
      // Pipelined hand-out takes one scheduling unit at a time (a whole
      // replication group under multi-cell replay) — workers return for more
      // the moment they finish, so there is nothing to balance. The barrier
      // shape keeps the historical round batching.
      std::size_t target = 1;
      if (options_.batch_size > 0) {
        target = options_.batch_size;
      } else if (!options_.pipeline) {
        target = std::max<std::size_t>(1, state.round_size() / (pool.size() * 4));
      }
      std::vector<PipelineJob> chunk = state.pop_chunk(target, options_.multi_cell_replay);
      if (chunk.empty()) continue;
      lock.unlock();
      std::exception_ptr failure;
      for (const PipelineJob& job : chunk) {
        ReplicationSummary summary;
        try {
          const auto job_start = std::chrono::steady_clock::now();
          run_one(job, summary);
          local.busy_s += seconds_since(job_start);
          ++local.jobs;
        } catch (...) {
          failure = std::current_exception();
          break;
        }
        lock.lock();
        state.deliver(job.cell, job.replication, std::move(summary));
        if (state.has_ready() || state.finished()) ready_cv.notify_all();
        lock.unlock();
      }
      lock.lock();
      if (failure) {
        if (!error) error = failure;
        ready_cv.notify_all();
        break;
      }
    }
    lanes[lane] = local;  // lock is held on every break path
  };

  std::vector<std::future<void>> futures;
  futures.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) futures.push_back(pool.submit(worker_loop));
  for (std::future<void>& future : futures) future.get();
  if (error) std::rethrow_exception(error);

  exec_stats_.lanes = std::move(lanes);
  exec_stats_.wall_s = seconds_since(wall_start);
  exec_stats_.launched = state.launched();
  exec_stats_.committed = state.committed();
  exec_stats_.discarded = state.discarded();

  for (const CellResult& cell : results) {
    util::log_info("cell '", cell.label, "': mean turnaround ", cell.turnaround.stats().mean(),
                   " (", cell.replications, " reps",
                   cell.saturated() ? ", SATURATED" : "", ")");
  }
  return results;
}

}  // namespace dg::exp
