#include "exp/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/replication_summary.hpp"
#include "rng/splitmix64.hpp"
#include "sim/workspace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace dg::exp {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

void bad_env(const char* name, const std::string& text, const char* expected) {
  throw std::invalid_argument(std::string(name) + ": expected " + expected + ", got \"" + text +
                              "\"");
}

std::optional<double> env_double(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*text, &consumed);
    if (consumed != text->size()) bad_env(name, *text, "a number");
    return value;
  } catch (const std::invalid_argument&) {
    bad_env(name, *text, "a number");
  } catch (const std::out_of_range&) {
    bad_env(name, *text, "a number in double range");
  }
}

std::optional<std::size_t> env_size(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  if (text->front() == '-') bad_env(name, *text, "a non-negative integer");
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(*text, &consumed);
    if (consumed != text->size()) bad_env(name, *text, "a non-negative integer");
    return static_cast<std::size_t>(value);
  } catch (const std::invalid_argument&) {
    bad_env(name, *text, "a non-negative integer");
  } catch (const std::out_of_range&) {
    bad_env(name, *text, "a non-negative integer in range");
  }
}

RunOptions RunOptions::from_env(RunOptions defaults) {
  if (auto v = env_size("DGSCHED_MIN_REPS")) defaults.min_replications = *v;
  if (auto v = env_size("DGSCHED_MAX_REPS")) defaults.max_replications = *v;
  if (auto v = env_double("DGSCHED_TRE")) defaults.target_relative_error = *v;
  if (auto v = env_size("DGSCHED_THREADS")) defaults.threads = *v;
  if (auto v = env_size("DGSCHED_SEED")) defaults.base_seed = *v;
  if (auto v = env_size("DGSCHED_WORKSPACES")) defaults.reuse_workspaces = *v != 0;
  if (auto v = env_size("DGSCHED_BATCH")) defaults.batch_size = *v;
  if (auto v = env_size("DGSCHED_WORLD_CACHE")) defaults.world_cache_bytes = *v;
  if (auto v = env_size("DGSCHED_MULTI_CELL")) defaults.multi_cell_replay = *v != 0;
  if (auto text = env_string("DGSCHED_QUEUE")) {
    const auto backend = des::parse_queue_backend(*text);
    if (!backend.has_value()) bad_env("DGSCHED_QUEUE", *text, "\"heap4\" or \"calendar\"");
    defaults.queue_backend = *backend;
  }
  if (defaults.max_replications < defaults.min_replications) {
    defaults.max_replications = defaults.min_replications;
  }
  return defaults;
}

std::optional<std::size_t> env_num_bots() { return env_size("DGSCHED_BOTS"); }

std::vector<CellResult> ExperimentRunner::run(const std::vector<NamedConfig>& cells) {
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const NamedConfig& cell : cells) {
    CellResult result;
    result.label = cell.label;
    result.config = cell.config;
    result.turnaround = stats::ReplicationAnalyzer(options_.ci_level,
                                                   options_.target_relative_error,
                                                   options_.min_replications);
    results.push_back(std::move(result));
  }

  // Workspaces before the pool: jobs reference them, and the pool's
  // destructor (which drains any still-queued jobs on an exceptional unwind)
  // must run first.
  std::vector<std::unique_ptr<sim::SimulationWorkspace>> workspaces;
  util::ThreadPool pool(options_.threads);
  workspaces.resize(pool.size());

  struct Job {
    std::size_t cell = 0;
    std::size_t replication = 0;
  };

  // Runs one replication on the calling pool worker, through that worker's
  // lazily-created workspace (or fresh construction when reuse is off / the
  // caller is not a pool thread), and writes its summary into `slot`.
  auto run_one = [&](const Job& job, ReplicationSummary& slot) {
    sim::SimulationConfig config = results[job.cell].config;
    // Seeds depend only on (base_seed, replication): common random numbers
    // across cells that differ only in scheduling policy.
    config.seed = rng::mix_seed(options_.base_seed, job.replication);
    // Cells sharing a replication seed replay one cached world realization
    // (bit-identical to live sampling; null cache = live processes).
    config.world_cache = world_cache_;
    if (options_.queue_backend.has_value()) config.queue_backend = options_.queue_backend;
    sim::Simulation simulation(std::move(config));
    sim::SimulationWorkspace* workspace = nullptr;
    if (options_.reuse_workspaces) {
      const std::size_t worker = util::ThreadPool::current_worker_index();
      if (worker < workspaces.size()) {
        if (!workspaces[worker]) {
          workspaces[worker] = std::make_unique<sim::SimulationWorkspace>();
        }
        workspace = workspaces[worker].get();
      }
    }
    slot = workspace != nullptr ? summarize(simulation.run(*workspace))
                                : summarize(simulation.run());
  };

  std::vector<std::size_t> reps_launched(cells.size(), 0);

  // Round 0: the minimum replications for every cell. Later rounds: one more
  // replication for each cell still imprecise, unsaturated, and under the
  // cap. Jobs are built cell-major / ascending replication — the fold order.
  std::vector<Job> round_jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < options_.min_replications; ++r) {
      round_jobs.push_back(Job{c, reps_launched[c]++});
    }
  }

  while (!round_jobs.empty()) {
    // Summary slots are preallocated so workers write without touching any
    // shared container.
    std::vector<ReplicationSummary> summaries(round_jobs.size());

    // Hand-out order. Multi-cell replay groups the round's jobs by
    // replication index — the world-cache key — so one worker walks a
    // realized world across every cell that shares it while the realization
    // (and the workspace it replays through) is cache-hot, instead of
    // touching each world once per cell. The sort is stable, so cells keep
    // build order within a group and groups ascend by replication. The
    // classic mode orders by descending expected cost so the big cells start
    // first and the small ones backfill; ties keep build order (stable).
    // Either way the fold below runs in build order after the barrier, so
    // results are bit-identical across hand-out modes and chunk shapes.
    std::vector<std::size_t> order(round_jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (options_.multi_cell_replay) {
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return round_jobs[a].replication < round_jobs[b].replication;
      });
    } else {
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return expected_cost(results[round_jobs[a].cell].config) >
               expected_cost(results[round_jobs[b].cell].config);
      });
    }

    const std::size_t batch =
        options_.batch_size > 0
            ? options_.batch_size
            : std::max<std::size_t>(1, order.size() / (pool.size() * 4));
    // Chunk boundaries: fixed-size slices of `order`, except that multi-cell
    // replay never splits a replication group across workers — a group is one
    // world walked in one pass.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    if (options_.multi_cell_replay) {
      std::size_t begin = 0;
      for (std::size_t i = 1; i <= order.size(); ++i) {
        const bool group_boundary =
            i == order.size() ||
            round_jobs[order[i]].replication != round_jobs[order[i - 1]].replication;
        if (group_boundary && i - begin >= batch) {
          chunks.emplace_back(begin, i);
          begin = i;
        }
      }
      if (begin < order.size()) chunks.emplace_back(begin, order.size());
    } else {
      for (std::size_t begin = 0; begin < order.size(); begin += batch) {
        chunks.emplace_back(begin, std::min(begin + batch, order.size()));
      }
    }

    std::vector<std::future<void>> futures;
    futures.reserve(chunks.size());
    for (const auto& [chunk_begin, chunk_end] : chunks) {
      std::vector<std::size_t> chunk(order.begin() + static_cast<std::ptrdiff_t>(chunk_begin),
                                     order.begin() + static_cast<std::ptrdiff_t>(chunk_end));
      futures.push_back(pool.submit([&, chunk = std::move(chunk)] {
        for (std::size_t index : chunk) run_one(round_jobs[index], summaries[index]);
      }));
    }

    // Round barrier. Drain every future even on failure — jobs reference
    // this frame's summaries, so nothing may still be running when we leave.
    std::exception_ptr error;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);

    // Fold in build order (cell-major, ascending replication): bit-identical
    // accumulator sequences to the historical sequential fold.
    for (std::size_t i = 0; i < round_jobs.size(); ++i) {
      fold(results[round_jobs[i].cell], summaries[i]);
    }

    round_jobs.clear();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      CellResult& cell = results[c];
      // Saturated cells never converge (censored means); stop at minimum.
      if (cell.saturated()) continue;
      if (cell.turnaround.precise_enough()) continue;
      if (reps_launched[c] >= options_.max_replications) continue;
      round_jobs.push_back(Job{c, reps_launched[c]++});
    }
  }

  for (const CellResult& cell : results) {
    util::log_info("cell '", cell.label, "': mean turnaround ", cell.turnaround.stats().mean(),
                   " (", cell.replications, " reps",
                   cell.saturated() ? ", SATURATED" : "", ")");
  }
  return results;
}

}  // namespace dg::exp
