#include "exp/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "rng/splitmix64.hpp"
#include "sim/workspace.hpp"
#include "util/thread_pool.hpp"

namespace dg::exp {

namespace {

std::string format_axis(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

}  // namespace

CampaignAxes CampaignAxes::smoke() {
  CampaignAxes axes;
  axes.machine_availabilities = {0.98, 0.50};
  axes.server_availabilities = {1.0, 0.70};
  axes.utilizations = {0.9};
  axes.replication_thresholds = {2};
  axes.policies = {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin};
  return axes;
}

std::vector<CampaignCell> expand_campaign(const CampaignAxes& axes) {
  if (axes.policies.empty() || axes.machine_availabilities.empty() ||
      axes.server_availabilities.empty() || axes.utilizations.empty() ||
      axes.replication_thresholds.empty()) {
    throw std::invalid_argument("campaign: every axis needs at least one value");
  }
  for (double a : axes.machine_availabilities) {
    if (!(a > 0.0) || !(a < 1.0)) {
      throw std::invalid_argument("campaign: machine availabilities must be in (0, 1)");
    }
  }
  for (double s : axes.server_availabilities) {
    if (!(s > 0.0) || !(s <= 1.0)) {
      throw std::invalid_argument("campaign: server availabilities must be in (0, 1]");
    }
  }
  for (double u : axes.utilizations) {
    if (!(u > 0.0)) throw std::invalid_argument("campaign: utilizations must be positive");
  }
  for (int r : axes.replication_thresholds) {
    if (r < 1) throw std::invalid_argument("campaign: replication thresholds must be >= 1");
  }
  if (!(axes.server_mttr > 0.0) || !(axes.granularity > 0.0) || !(axes.bag_size > 0.0) ||
      axes.num_bots == 0) {
    throw std::invalid_argument(
        "campaign: server_mttr, granularity, bag_size must be positive and num_bots >= 1");
  }

  std::vector<CampaignCell> cells;
  cells.reserve(axes.policies.size() * axes.machine_availabilities.size() *
                axes.server_availabilities.size() * axes.utilizations.size() *
                axes.replication_thresholds.size());
  for (sched::PolicyKind policy : axes.policies) {
    for (double availability : axes.machine_availabilities) {
      for (double server : axes.server_availabilities) {
        for (double utilization : axes.utilizations) {
          for (int threshold : axes.replication_thresholds) {
            CampaignCell cell;
            cell.policy = policy;
            cell.machine_availability = availability;
            cell.server_availability = server;
            cell.utilization = utilization;
            cell.replication_threshold = threshold;
            cell.label = sched::to_string(policy) + " a=" + format_axis(availability) +
                         " s=" + format_axis(server) + " U=" + format_axis(utilization) +
                         " r=" + std::to_string(threshold);

            grid::GridConfig grid_config;
            grid_config.heterogeneity = axes.heterogeneity;
            grid_config.availability = grid::AvailabilityModel::from_availability(availability);
            if (server < 1.0) {
              grid_config.checkpoint_server_faults.enabled = true;
              grid_config.checkpoint_server_faults.mttr = axes.server_mttr;
              // MTBF solving MTBF / (MTBF + MTTR) = a.
              grid_config.checkpoint_server_faults.mtbf =
                  server / (1.0 - server) * axes.server_mttr;
            }

            sim::SimulationConfig config;
            config.grid = grid_config;
            config.workload.types = {workload::BotType{axes.granularity, 0.5}};
            config.workload.bag_size = axes.bag_size;
            config.workload.num_bots = axes.num_bots;
            config.workload.arrival_rate = workload::arrival_rate_for_utilization(
                utilization, axes.bag_size, workload::effective_grid_power(grid_config));
            config.policy = policy;
            config.replication_threshold = threshold;
            config.warmup_bots = axes.warmup_bots;
            config.adversary = axes.adversary;
            cell.config = std::move(config);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

std::vector<RiskCliffRow> risk_cliff_rows(const std::vector<CampaignCell>& cells,
                                          const std::vector<CellResult>& results) {
  if (cells.size() != results.size()) {
    throw std::invalid_argument("risk_cliff_rows: cells/results size mismatch");
  }
  std::vector<RiskCliffRow> rows;
  rows.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CampaignCell& cell = cells[i];
    const CellResult& result = results[i];
    RiskCliffRow row;
    row.label = cell.label;
    row.policy = sched::to_string(cell.policy);
    row.machine_availability = cell.machine_availability;
    row.server_availability = cell.server_availability;
    row.utilization = cell.utilization;
    row.replication_threshold = cell.replication_threshold;
    row.mean_turnaround = result.turnaround.stats().mean();
    row.p50 = result.turnaround_tail.quantile(0.50);
    row.p95 = result.turnaround_tail.quantile(0.95);
    row.p99 = result.turnaround_tail.quantile(0.99);
    row.wasted_fraction = result.wasted_fraction.mean();
    row.replications = result.replications;
    row.saturated = result.saturated();
    rows.push_back(std::move(row));
  }

  // Baseline of a (policy, utilization, threshold) slice: the cell at the
  // lexicographically largest (machine availability, server availability) —
  // the mildest corner of the sweep. Each row's degradation is its p95 over
  // that baseline p95.
  for (RiskCliffRow& row : rows) {
    const RiskCliffRow* baseline = nullptr;
    for (const RiskCliffRow& candidate : rows) {
      if (candidate.policy != row.policy || candidate.utilization != row.utilization ||
          candidate.replication_threshold != row.replication_threshold) {
        continue;
      }
      if (baseline == nullptr ||
          candidate.machine_availability > baseline->machine_availability ||
          (candidate.machine_availability == baseline->machine_availability &&
           candidate.server_availability > baseline->server_availability)) {
        baseline = &candidate;
      }
    }
    row.degradation_vs_baseline =
        (baseline != nullptr && baseline->p95 > 0.0) ? row.p95 / baseline->p95 : 1.0;
  }
  return rows;
}

SeedSpreadReport seed_sensitivity(const sim::SimulationConfig& config, const RunOptions& options,
                                  std::size_t num_seeds) {
  if (num_seeds < 2) {
    throw std::invalid_argument("seed_sensitivity: need at least 2 seeds for a spread");
  }
  SeedSpreadReport report;
  report.seeds = num_seeds;
  report.p95.resize(num_seeds);
  report.mean_turnaround.resize(num_seeds);
  std::vector<std::uint8_t> saturated(num_seeds, 0);

  // Per-seed slots are preallocated and each worker writes only its own, so
  // the fold below (ascending seed index) is bit-identical for any thread
  // count or completion order — the PR 6 five-shape pattern.
  std::vector<std::unique_ptr<sim::SimulationWorkspace>> workspaces;
  util::ThreadPool pool(options.threads);
  workspaces.resize(pool.size());

  auto run_seed = [&](std::size_t index) {
    sim::SimulationConfig seed_config = config;
    seed_config.seed = rng::mix_seed(options.base_seed, index);
    sim::Simulation simulation(std::move(seed_config));
    sim::SimulationWorkspace* workspace = nullptr;
    if (options.reuse_workspaces) {
      const std::size_t worker = util::ThreadPool::current_worker_index();
      if (worker < workspaces.size()) {
        if (!workspaces[worker]) workspaces[worker] = std::make_unique<sim::SimulationWorkspace>();
        workspace = workspaces[worker].get();
      }
    }
    const auto record = [&](const sim::SimulationResult& result) {
      report.p95[index] = result.turnaround_tail.quantile(0.95);
      report.mean_turnaround[index] = result.turnaround.mean();
      saturated[index] = result.saturated ? 1 : 0;
    };
    if (workspace != nullptr) {
      record(simulation.run(*workspace));
    } else {
      record(simulation.run());
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(num_seeds);
  for (std::size_t i = 0; i < num_seeds; ++i) {
    futures.push_back(pool.submit([&run_seed, i] { run_seed(i); }));
  }
  std::exception_ptr error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  for (std::uint8_t flag : saturated) report.saturated_seeds += flag;

  std::vector<double> sorted = report.p95;
  std::sort(sorted.begin(), sorted.end());
  report.p95_min = sorted.front();
  report.p95_max = sorted.back();
  report.p95_median = num_seeds % 2 == 1
                          ? sorted[num_seeds / 2]
                          : 0.5 * (sorted[num_seeds / 2 - 1] + sorted[num_seeds / 2]);
  stats::OnlineStats spread;
  for (double value : report.p95) spread.add(value);
  report.p95_mean = spread.mean();
  report.p95_stddev = spread.stddev();
  report.p95_cv = report.p95_mean != 0.0 ? report.p95_stddev / report.p95_mean : 0.0;
  if (report.p95_min > 0.0) {
    report.p95_max_over_min = report.p95_max / report.p95_min;
  } else {
    report.p95_max_over_min =
        report.p95_max > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return report;
}

CampaignOptions CampaignOptions::from_env(CampaignOptions defaults) {
  if (auto v = env_size("DGSCHED_CAMPAIGN_SEEDS")) {
    if (*v < 2) {
      bad_env("DGSCHED_CAMPAIGN_SEEDS", std::to_string(*v), "an integer >= 2");
    }
    defaults.seeds = *v;
  }
  if (auto text = env_string("DGSCHED_CAMPAIGN_GRID")) {
    if (*text == "smoke") {
      defaults.smoke = true;
    } else if (*text == "full") {
      defaults.smoke = false;
    } else {
      bad_env("DGSCHED_CAMPAIGN_GRID", *text, "\"full\" or \"smoke\"");
    }
  }
  if (auto v = env_size("DGSCHED_ADVERSARY")) defaults.adversary = *v != 0;
  return defaults;
}

}  // namespace dg::exp
