#include "exp/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "exp/journal.hpp"

namespace dg::exp {

PipelineState::PipelineState(const RunOptions& options, std::vector<CellResult>& results,
                             CampaignJournal* journal)
    : options_(options),
      results_(results),
      journal_(journal),
      cells_(results.size()),
      cost_(results.size(), 0.0),
      ready_(ReadyOrder{options.multi_cell_replay}) {
  for (std::size_t c = 0; c < results_.size(); ++c) {
    cost_[c] = expected_cost(results_[c].config);
  }
}

void PipelineState::mark_recovered(std::size_t cell, std::size_t replication) {
  recovered_set_.emplace(cell, replication);
}

void PipelineState::start() {
  if (options_.min_replications == 0) {
    // Zero-minimum campaigns run nothing — the historical round loop never
    // built a round 0 job.
    for (Cell& cell : cells_) {
      cell.stopped = true;
      cell.final_reps = 0;
    }
    stopped_cells_ = cells_.size();
    pump_journal();
    return;
  }
  if (options_.pipeline) {
    for (std::size_t c = 0; c < cells_.size(); ++c) extend(c);
  } else {
    maybe_refill();
  }
}

void PipelineState::push_range(std::size_t c, std::size_t to) {
  Cell& cell = cells_[c];
  for (std::size_t r = cell.allowed; r < to; ++r) {
    if (is_recovered(c, r)) continue;  // delivered from the journal, not dispatched
    ready_.push(ReadyEntry{cost_[c], r, c, seq_++});
    ++launched_;
    ++round_size_;
  }
  cell.allowed = std::max(cell.allowed, to);
}

void PipelineState::extend(std::size_t c) {
  Cell& cell = cells_[c];
  if (cell.stopped) return;
  // The justified frontier: the replications the precision loop would run
  // regardless of speculation. The cap is applied to the speculative window
  // only — a min_replications above the cap still launches (and folds) the
  // minimum, exactly like the historical round 0.
  const std::size_t justified =
      cell.committed < options_.min_replications ? options_.min_replications : cell.committed + 1;
  const std::size_t target =
      std::max(justified, std::min(justified + options_.speculate, options_.max_replications));
  push_range(c, target);
}

void PipelineState::maybe_refill() {
  if (options_.pipeline) return;
  // Barrier shape: new jobs appear only when every handed-out job has been
  // delivered and the queue is drained — the historical round boundary. Each
  // refill grants one replication per live cell (round 0: the minimum); a
  // refill fully covered by journal recovery yields no dispatchable job and
  // simply advances to the next round.
  prune_stale();
  while (in_flight_ == 0 && ready_.empty() && !finished()) {
    round_size_ = 0;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      Cell& cell = cells_[c];
      if (cell.stopped) continue;
      const std::size_t to =
          first_round_ ? options_.min_replications : std::max(cell.allowed, cell.committed) + 1;
      push_range(c, to);
    }
    first_round_ = false;
    prune_stale();
  }
}

void PipelineState::prune_stale() {
  while (!ready_.empty()) {
    const ReadyEntry& top = ready_.top();
    const Cell& cell = cells_[top.cell];
    const bool stale = (cell.stopped && top.replication >= cell.final_reps) ||
                       top.replication < cell.committed;
    if (!stale) return;
    ready_.pop();
  }
}

bool PipelineState::has_ready() {
  prune_stale();
  return !ready_.empty();
}

std::vector<PipelineJob> PipelineState::pop_chunk(std::size_t target, bool whole_groups) {
  std::vector<PipelineJob> out;
  prune_stale();
  while (out.size() < target && !ready_.empty()) {
    const ReadyEntry top = ready_.top();
    ready_.pop();
    out.push_back(PipelineJob{top.cell, top.replication});
    ++in_flight_;
    prune_stale();
  }
  if (whole_groups && options_.multi_cell_replay && !out.empty()) {
    // Finish the current replication group: every queued cell of the last
    // popped replication index goes to the same worker (one realized world,
    // one pass).
    const std::size_t group = out.back().replication;
    while (!ready_.empty() && ready_.top().replication == group) {
      const ReadyEntry top = ready_.top();
      ready_.pop();
      out.push_back(PipelineJob{top.cell, top.replication});
      ++in_flight_;
      prune_stale();
    }
  }
  return out;
}

void PipelineState::requeue(const std::vector<PipelineJob>& jobs) {
  for (const PipelineJob& job : jobs) {
    ready_.push(ReadyEntry{cost_[job.cell], job.replication, job.cell, seq_++});
  }
  in_flight_ -= jobs.size();
  prune_stale();
}

void PipelineState::decide(std::size_t c) {
  Cell& cell = cells_[c];
  if (cell.committed < options_.min_replications) return;
  CellResult& result = results_[c];
  // The historical per-round continuation rule, evaluated at the same
  // per-cell commit counts the round barrier evaluated it at. Saturated
  // cells never converge (censored means); stop at the minimum.
  if (result.saturated() || result.turnaround.precise_enough() ||
      cell.committed >= options_.max_replications) {
    cell.stopped = true;
    cell.final_reps = cell.committed;
    ++stopped_cells_;
    // Speculative deliveries at/after the stop point will never fold.
    for (auto it = cell.buffer.lower_bound(cell.final_reps); it != cell.buffer.end();) {
      ++discarded_;
      it = cell.buffer.erase(it);
    }
  }
}

void PipelineState::cascade(std::size_t c) {
  Cell& cell = cells_[c];
  while (!cell.stopped) {
    auto it = cell.buffer.find(cell.committed);
    if (it == cell.buffer.end()) break;
    fold(results_[c], it->second);
    // Journal mode keeps the summary buffered until the canonical cursor
    // emits (or skips) its record.
    if (journal_ == nullptr) cell.buffer.erase(it);
    ++cell.committed;
    ++committed_;
    decide(c);
    if (!cell.stopped && options_.pipeline) extend(c);
  }
}

void PipelineState::deliver(std::size_t cell, std::size_t replication,
                            ReplicationSummary&& summary) {
  deliver_impl(cell, replication, std::move(summary), /*from_recovery=*/false);
}

void PipelineState::deliver_recovered(std::size_t cell, std::size_t replication,
                                      ReplicationSummary&& summary) {
  deliver_impl(cell, replication, std::move(summary), /*from_recovery=*/true);
}

void PipelineState::deliver_impl(std::size_t cell, std::size_t replication,
                                 ReplicationSummary&& summary, bool from_recovery) {
  if (!from_recovery) --in_flight_;
  Cell& state = cells_[cell];
  if ((state.stopped && replication >= state.final_reps) || replication < state.committed) {
    ++discarded_;
    maybe_refill();
    return;
  }
  state.buffer.emplace(replication, std::move(summary));
  if (from_recovery) ++recovered_;
  cascade(cell);
  pump_journal();
  maybe_refill();
}

void PipelineState::pump_journal() {
  if (journal_ == nullptr || journal_done_) return;
  for (;;) {
    // Cursor position -> the canonical record (c, r) it waits on.
    if (cursor_round_ == 0 &&
        (options_.min_replications == 0 || cursor_cell_ == cells_.size())) {
      cursor_round_ = 1;
      cursor_cell_ = 0;
      cursor_rep_ = 0;
    }
    if (cursor_round_ > 0) {
      if (cursor_cell_ == cells_.size()) {
        ++cursor_round_;
        cursor_cell_ = 0;
      }
      if (cursor_cell_ == 0) {
        // Round r >= 1 emits replication min+r-1 for cells that reached it.
        // Once every cell has stopped below the current round's replication
        // index the canonical sequence is exhausted.
        if (stopped_cells_ != cells_.size()) {
          // Unstopped cells always eventually block or emit below.
        } else {
          const std::size_t r = options_.min_replications + cursor_round_ - 1;
          bool any = false;
          for (const Cell& cell : cells_) {
            if (cell.final_reps > r) {
              any = true;
              break;
            }
          }
          if (!any) {
            journal_done_ = true;
            return;
          }
        }
      }
    }
    const std::size_t c = cursor_cell_;
    const std::size_t r =
        cursor_round_ == 0 ? cursor_rep_ : options_.min_replications + cursor_round_ - 1;
    Cell& cell = cells_[c];
    const bool skipped = cell.stopped && cell.final_reps <= r;
    if (!skipped) {
      if (cell.committed <= r) return;  // blocked: predecessor record pending
      auto it = cell.buffer.find(r);
      if (it != cell.buffer.end()) {
        if (!is_recovered(c, r)) {
          journal_->append(static_cast<std::uint32_t>(c), static_cast<std::uint32_t>(r),
                           it->second);
          if (after_append) after_append();
        }
        cell.buffer.erase(it);
      }
    }
    if (cursor_round_ == 0) {
      if (++cursor_rep_ == options_.min_replications) {
        cursor_rep_ = 0;
        ++cursor_cell_;
      }
    } else {
      ++cursor_cell_;
    }
  }
}

}  // namespace dg::exp
