// Multi-process sharded campaign execution.
//
// ShardedRunner is ExperimentRunner's process-level sibling: it draws the
// same (cell, replication) jobs from the shared PipelineState
// (exp/pipeline.hpp), but instead of fanning them out over an in-process
// thread pool it forks N worker processes and hands out replication-group-
// aligned chunks over per-worker UNIX socket pairs. Each worker runs its
// jobs sequentially through a private SimulationWorkspace and a private
// WorldCache, reduces every replication to a ReplicationSummary, and ships
// the summaries back; the coordinator feeds them through the pipeline's
// ordered per-cell commit — the exact fold sequence of the threaded runner —
// so the merged CellResults are bit-identical to a single-process run for
// ANY worker count, chunk shape, speculation window, worker-death schedule,
// or kill/resume point. With RunOptions::pipeline on (the default), chunks
// are double-buffered per worker (a new chunk is assigned while the previous
// one runs) and chunk sizes shrink toward the campaign drain so the final
// stragglers are single replications; pipeline off reproduces the historical
// barrier rounds.
//
// Result transport: summaries carry multiple 768-bucket u64 quantile
// sketches — tens of KB each — so they travel through a per-worker
// shared-memory ring (util/shm_ring.hpp, created before fork) and the
// socketpair carries only small control messages; a summary that outgrows
// its slot falls back to inline bytes on the socket.
//
// Why processes at all: address-space isolation (one crashed replication
// loses a chunk, not the campaign — the coordinator re-queues it and forks
// a replacement worker) and the path past one process's allocator/thread
// scaling. What makes it affordable is the mmap world pool
// (grid/world_pool.hpp): workers attach their caches to a shared pool
// directory, so each replication's world is synthesized by exactly one
// process and mapped by its siblings, the cross-process analogue of the
// threaded runner's shared WorldCache.
//
// Fault tolerance is layered:
//   worker death   — the coordinator detects EOF, reaps the child, re-queues
//                    the outstanding chunk, and respawns (bounded; a
//                    deterministically-crashing replication eventually
//                    surfaces as an error instead of a spin).
//   coordinator    — with a journal attached (exp/journal.hpp), every
//   death            completed replication is appended + fsync'd per chunk;
//                    a relaunched campaign folds the journal's records into
//                    its round slots and only dispatches what's missing.
//
// Coordinator threading: none. The coordinator is a single-threaded poll()
// loop, which keeps fork() safe (no locks can be held by a vanished thread)
// and the fold trivially ordered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "grid/world_cache.hpp"

namespace dg::exp {

struct ShardOptions {
  /// Worker processes to fork; 0 behaves as 1. Workers run their chunks
  /// sequentially — with P workers the natural comparison is the threaded
  /// runner at P threads.
  std::size_t procs = 1;
  /// Completion-journal path; empty = no journal (no resume).
  std::string journal_path;
  /// mmap world-pool directory shared by the workers; empty = no pool (each
  /// worker synthesizes its own worlds).
  std::string pool_dir;
  /// fsync the journal after every received chunk (the durability the resume
  /// contract assumes). Off trades crash-window durability for speed.
  bool fsync_journal = true;

  // Failure-injection hooks for the kill/resume tests and the shard-smoke CI
  // job. Both default off.
  /// Coordinator _exits (simulating a kill -9) after this many journal
  /// appends; 0 = disabled.
  std::size_t abort_after_appends = 0;
  /// Worker index whose FIRST incarnation self-kills mid-chunk after
  /// `self_kill_jobs` replications (respawned replacements run normally).
  /// SIZE_MAX = disabled.
  std::size_t self_kill_worker = static_cast<std::size_t>(-1);
  std::size_t self_kill_jobs = 0;

  /// Reads DGSCHED_PROCS, DGSCHED_JOURNAL (path), DGSCHED_POOL (directory),
  /// DGSCHED_JOURNAL_FSYNC (0 disables), DGSCHED_SHARD_ABORT_AFTER (count),
  /// and DGSCHED_SHARD_SELF_KILL ("worker:jobs"). Same conventions as
  /// RunOptions::from_env.
  [[nodiscard]] static ShardOptions from_env(ShardOptions defaults);
  [[nodiscard]] static ShardOptions from_env() { return from_env(ShardOptions{}); }
};

class ShardedRunner {
 public:
  ShardedRunner(RunOptions options, ShardOptions shard)
      : options_(options), shard_(std::move(shard)) {}

  /// Runs every cell to its precision target, exactly like
  /// ExperimentRunner::run and bit-identical to it. Forks workers on entry,
  /// shuts them down (collecting their cache stats) before returning. Not
  /// re-entrant; must be called from a process where forking is safe (the
  /// coordinator itself creates no threads).
  [[nodiscard]] std::vector<CellResult> run(const std::vector<NamedConfig>& cells);

  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }
  [[nodiscard]] const ShardOptions& shard_options() const noexcept { return shard_; }

  /// Aggregated WorldCache stats across all worker processes of the last
  /// run() (merged via WorldCacheStats::merge) — the source of the
  /// cross-process pool_hit_rate surfaced in perf JSON.
  [[nodiscard]] const grid::WorldCacheStats& worker_cache_stats() const noexcept {
    return worker_stats_;
  }
  /// Replications served from the journal instead of dispatched, last run().
  [[nodiscard]] std::uint64_t recovered_replications() const noexcept { return recovered_; }

  /// Execution-shape accounting for the most recent run(): one lane per
  /// worker process (busy self-reported over the socket; stall derived as
  /// wall - busy), plus the pipeline's speculation counters.
  [[nodiscard]] const ExecutionStats& exec_stats() const noexcept { return exec_stats_; }

 private:
  RunOptions options_;
  ShardOptions shard_;
  grid::WorldCacheStats worker_stats_{};
  std::uint64_t recovered_ = 0;
  ExecutionStats exec_stats_;
};

}  // namespace dg::exp
