// Experiment runner: scenario matrices with parallel replications.
//
// Each cell (one simulation configuration) is replicated with independent
// seeds until its 95% CI on mean turnaround reaches the target relative error
// (the paper's 2.5%) or the replication cap. Replications of all cells run
// concurrently on a thread pool; every simulation is fully independent, and
// summaries fold through the PipelineState ordered commit (pipeline.hpp), so
// results are bit-identical for any thread count or completion order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/queue_policy.hpp"
#include "grid/world_cache.hpp"
#include "sim/simulation.hpp"
#include "stats/confidence.hpp"

namespace dg::exp {

struct RunOptions {
  std::size_t min_replications = 3;
  std::size_t max_replications = 12;
  double ci_level = 0.95;
  /// Paper target: 0.025. Benches default looser for wall-clock reasons; set
  /// DGSCHED_TRE=0.025 to match the paper.
  double target_relative_error = 0.05;
  std::uint64_t base_seed = 0x5eedULL;
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Run replications through one reusable sim::SimulationWorkspace per pool
  /// worker (the zero-allocation path; see sim/workspace.hpp). Off =
  /// historical fresh-construction per replication. Either way the results
  /// are bit-identical.
  bool reuse_workspaces = true;
  /// Replications per submitted pool job; 0 = auto (about four jobs per
  /// worker per round). Batching amortizes queue/future overhead without
  /// hurting balance — jobs are handed out largest-expected-cost first.
  std::size_t batch_size = 0;
  /// Budget (bytes) of the shared world-realization cache: each replication
  /// seed's availability / server-fault timelines are synthesized once and
  /// replayed in every policy cell sharing that seed (bit-identical; see
  /// grid/world_cache.hpp). 0 disables the cache — every replication samples
  /// its processes live.
  std::size_t world_cache_bytes = grid::WorldCache::kDefaultBudgetBytes;
  /// Walk one realized world across every policy cell in a single pass: jobs
  /// of a round are handed out grouped by replication index (= world-cache
  /// key), so a worker replays a realization through all its cells while it
  /// is hot instead of revisiting it once per cell. Results are bit-identical
  /// either way — the fold happens after the round barrier in build order.
  /// Off = historical largest-expected-cost-first hand-out.
  bool multi_cell_replay = true;
  /// DES event-queue backend forced on every cell; nullopt keeps each cell's
  /// own setting (usually the DGSCHED_QUEUE CMake/env default). Backends are
  /// bit-identical (see des/queue_policy.hpp).
  std::optional<des::QueueBackend> queue_backend;
  /// Barrier-free execution (see exp/pipeline.hpp): jobs are handed out
  /// continuously and each summary folds the moment its per-cell
  /// predecessors have committed, so workers never drain-and-wait at a
  /// round boundary. Off = the historical barrier-synchronized rounds.
  /// Results, artifacts, and journal bytes are bit-identical either way.
  bool pipeline = true;
  /// Replications launched beyond each cell's justified precision frontier
  /// (pipelined mode only; 0 disables). Common-random-numbers seeding makes
  /// replication (cell, k) deterministic regardless of execution shape, so
  /// summaries for cells that prove precise first are simply discarded —
  /// speculation trades wasted work for never idling at a precision check.
  std::size_t speculate = 1;

  /// Reads DGSCHED_{MIN_REPS,MAX_REPS,TRE,THREADS,SEED,WORKSPACES,BATCH,
  /// WORLD_CACHE,MULTI_CELL,QUEUE,PIPELINE,SPECULATE} overrides. Malformed
  /// values raise std::invalid_argument naming the offending variable.
  [[nodiscard]] static RunOptions from_env(RunOptions defaults);
  [[nodiscard]] static RunOptions from_env() { return from_env(RunOptions{}); }
};

/// Env override for workload sizes used by the figure benches (DGSCHED_BOTS).
[[nodiscard]] std::optional<std::size_t> env_num_bots();

// Environment-knob helpers shared by the figure and campaign drivers: read a
// DGSCHED_* variable, returning nullopt when unset/empty. Malformed values
// raise std::invalid_argument naming the variable and the offending text —
// the same convention RunOptions::from_env follows.
[[nodiscard]] std::optional<std::string> env_string(const char* name);
[[nodiscard]] std::optional<double> env_double(const char* name);
[[nodiscard]] std::optional<std::size_t> env_size(const char* name);
/// Throws the convention's std::invalid_argument for `name` set to `text`.
[[noreturn]] void bad_env(const char* name, const std::string& text, const char* expected);

struct NamedConfig {
  std::string label;
  sim::SimulationConfig config;  // seed is overwritten per replication
};

/// Wall-clock accounting for one execution lane (a pool worker thread, or a
/// sharded worker process). busy_s is time spent executing replications;
/// stall_s is time spent waiting for launchable work (the straggler/barrier
/// penalty the pipelined scheduler removes). For sharded workers busy_s is
/// self-reported and stall_s is derived as wall - busy (it includes protocol
/// overhead, not just idleness).
struct WorkerLaneStats {
  double busy_s = 0.0;
  double stall_s = 0.0;
  std::uint64_t jobs = 0;
};

/// Execution-shape observability for one run(): how the campaign actually
/// executed (lane utilization, speculation economics), as opposed to what it
/// computed. Filled by both runners; threaded into perf_json and the
/// robustness-campaign banner.
struct ExecutionStats {
  std::vector<WorkerLaneStats> lanes;
  double wall_s = 0.0;
  std::uint64_t launched = 0;   ///< replications handed to the ready queue
  std::uint64_t committed = 0;  ///< summaries folded into cell accumulators
  std::uint64_t discarded = 0;  ///< speculative summaries dropped unfolded
  std::uint64_t recovered = 0;  ///< replications replayed from the journal

  [[nodiscard]] double busy_s() const noexcept {
    double total = 0.0;
    for (const WorkerLaneStats& lane : lanes) total += lane.busy_s;
    return total;
  }
  [[nodiscard]] double stall_s() const noexcept {
    double total = 0.0;
    for (const WorkerLaneStats& lane : lanes) total += lane.stall_s;
    return total;
  }
};

struct CellResult {
  std::string label;
  sim::SimulationConfig config;
  stats::ReplicationAnalyzer turnaround{0.95, 0.025, 3};
  stats::OnlineStats waiting;
  stats::OnlineStats makespan;
  stats::OnlineStats utilization;
  stats::OnlineStats wasted_fraction;
  stats::OnlineStats lost_work;
  /// Merged tail sketches across the cell's replications (exact bucket-count
  /// addition, so the merged p50/p95/p99 are bit-identical regardless of
  /// thread count or batch shape — see docs/METRICS.md). The turnaround /
  /// slowdown sketches pool every measured bag of every replication; the gap
  /// sketch pools every completion gap.
  stats::QuantileSketch turnaround_tail;
  stats::QuantileSketch slowdown_tail;
  stats::QuantileSketch completion_gap_tail;
  /// Per-replication end-of-run decayed busy fraction
  /// (SimulationResult::decayed_utilization).
  stats::OnlineStats decayed_utilization;
  // Checkpoint-server fault/recovery counters (all zero for a reliable
  // server); per-replication means of the SimulationResult::faults fields.
  stats::OnlineStats transfer_retries;
  stats::OnlineStats replicas_degraded;
  stats::OnlineStats server_downtime;
  /// Total DES events executed across the cell's replications (raw count, not
  /// a mean) — the numerator of events-per-second throughput reporting.
  std::uint64_t events_executed = 0;
  std::size_t replications = 0;
  std::size_t saturated_replications = 0;

  [[nodiscard]] bool saturated() const noexcept { return saturated_replications > 0; }
  [[nodiscard]] stats::ConfidenceInterval turnaround_ci() const {
    return turnaround.interval();
  }
};

/// Thread-safety: run() is internally parallel (replications fan out over a
/// util::ThreadPool of options().threads workers, each running jobs through
/// its private SimulationWorkspace) but the runner itself is not re-entrant
/// — one run() at a time per instance. Scheduling is barrier-free (see
/// exp/pipeline.hpp): workers pull jobs from a shared PipelineState and
/// deliver summaries into its per-cell reorder buffers under one mutex; each
/// summary folds the moment its per-cell predecessors have committed, in
/// cell order / ascending replication order — the exact accumulator
/// sequences of a sequential run, regardless of worker completion order,
/// speculation window, batch shape, or thread count.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunOptions options)
      : options_(options),
        world_cache_(options.world_cache_bytes > 0
                         ? std::make_shared<grid::WorldCache>(options.world_cache_bytes)
                         : nullptr) {}

  /// Runs every cell to its precision target; cell order is preserved.
  /// Replication `i` of every cell uses seed mix_seed(base_seed, i) —
  /// deliberately independent of the cell, so cells are compared under
  /// common random numbers (and share one cached world realization when the
  /// world cache is on).
  [[nodiscard]] std::vector<CellResult> run(const std::vector<NamedConfig>& cells);

  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }

  /// The runner's world-realization cache; null when world_cache_bytes == 0.
  /// Shared across run() calls, so hit-rate statistics accumulate.
  [[nodiscard]] const std::shared_ptr<grid::WorldCache>& world_cache() const noexcept {
    return world_cache_;
  }

  /// Execution-shape accounting for the most recent run().
  [[nodiscard]] const ExecutionStats& exec_stats() const noexcept { return exec_stats_; }

 private:
  RunOptions options_;
  std::shared_ptr<grid::WorldCache> world_cache_;
  ExecutionStats exec_stats_;
};

}  // namespace dg::exp
