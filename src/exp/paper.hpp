// Paper experiment definitions (Figures 1 and 2 plus the unreported
// configurations) and their table renderers.
//
// Every figure panel plots mean BoT turnaround vs task granularity, one bar
// per bag-selection policy. render_figure() regenerates a figure's four
// panels as aligned ASCII tables (and optionally CSV): same rows, same
// series, same saturation markers ("the histogram bar went over the frame of
// the graph"). bench/figure_main.hpp is the driver that runs the cells and
// feeds this renderer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "grid/desktop_grid.hpp"
#include "sched/policy.hpp"
#include "workload/generator.hpp"

namespace dg::exp {

struct PanelSpec {
  grid::Heterogeneity heterogeneity;
  workload::Intensity intensity;
};

struct FigureSpec {
  std::string title;
  grid::AvailabilityLevel availability;
  std::vector<PanelSpec> panels;
  std::vector<double> granularities{1000.0, 5000.0, 25000.0, 125000.0};
  std::vector<sched::PolicyKind> policies{sched::PolicyKind::kFcfsExcl,
                                          sched::PolicyKind::kFcfsShare,
                                          sched::PolicyKind::kRoundRobin,
                                          sched::PolicyKind::kRoundRobinNrf,
                                          sched::PolicyKind::kLongIdle};
  std::size_t num_bots = 100;
  std::size_t warmup_bots = 10;
  double bag_size = 2.5e6;
};

/// Figure 1: Hom/Het x Low/High intensity at ~98% availability.
[[nodiscard]] FigureSpec figure1_spec();
/// Figure 2: same panels at ~50% availability.
[[nodiscard]] FigureSpec figure2_spec();
/// The configurations the paper measured but did not plot (MedAvail and
/// medium intensity); the paper states they "do not significantly differ".
[[nodiscard]] FigureSpec unreported_spec();

/// Builds the cell matrix for a figure (panel-major, then granularity, then
/// policy). Labels are "<Het>-<Avail>/<intensity>/g=<granularity>/<policy>".
[[nodiscard]] std::vector<NamedConfig> figure_cells(const FigureSpec& spec);

/// Renders the per-panel tables for already-computed results (cells must be
/// in figure_cells() order).
void render_figure(const FigureSpec& spec, const std::vector<CellResult>& results,
                   std::ostream& os, std::ostream* csv = nullptr);

}  // namespace dg::exp
