// Workload generation.
//
// Paper model: each workload combines a BoT type (task granularity X; task
// sizes Uniform[X/2, 3X/2]) with a Poisson arrival process. Every bag has the
// same total work S ("application size"); tasks are appended until their
// nominal times sum to S. The arrival rate lambda is derived from a target
// grid utilization U via lambda = U / D, where D = S / P_eff and P_eff is the
// grid's total power scaled by availability and checkpoint overhead.
//
// The paper's four granularities are {1000, 5000, 25000, 125000} s; its three
// intensities are U in {0.5, 0.75, 0.9}. Mixed-type workloads (several
// granularities in one arrival stream) implement the paper's first
// future-work direction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "grid/desktop_grid.hpp"
#include "grid/outage.hpp"
#include "rng/random_stream.hpp"
#include "workload/bot.hpp"

namespace dg::workload {

/// The paper's four task granularities, in seconds on the reference machine.
inline constexpr double kPaperGranularities[] = {1000.0, 5000.0, 25000.0, 125000.0};

/// The paper's workload intensities (target grid utilizations).
enum class Intensity : std::uint8_t { kLow, kMed, kHigh };

[[nodiscard]] std::string to_string(Intensity intensity);
[[nodiscard]] std::optional<Intensity> parse_intensity(std::string_view name);
[[nodiscard]] double utilization_for(Intensity intensity) noexcept;

struct BotType {
  /// Mean task execution time on a P = 1 machine.
  double granularity = 1000.0;
  /// Task sizes drawn from Uniform[(1-spread) X, (1+spread) X].
  double spread = 0.5;
};

/// Shape of the submission process (all with the same mean rate).
enum class ArrivalProcess : std::uint8_t {
  kPoisson,        // the paper's model: exponential inter-arrivals
  kUniformJitter,  // near-periodic: inter-arrival ~ Uniform[0.5, 1.5]/rate
  kBursty,         // two-state MMPP: burst periods with elevated rate
};

[[nodiscard]] std::string to_string(ArrivalProcess process);
[[nodiscard]] std::optional<ArrivalProcess> parse_arrival_process(std::string_view name);

struct WorkloadConfig {
  /// Candidate BoT types; each arriving bag picks one uniformly at random.
  /// A single entry reproduces the paper's homogeneous-type workloads.
  std::vector<BotType> types{BotType{}};
  /// Total work per bag (the paper's fixed "application size"), seconds on a
  /// P = 1 machine.
  double bag_size = 2.5e6;
  /// Mean arrival rate (bags per second).
  double arrival_rate = 1e-4;
  /// Number of bags to generate.
  std::size_t num_bots = 100;
  /// Shape of the arrival process (mean rate is arrival_rate regardless).
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// kBursty only: rate multiplier inside a burst (>1).
  double burst_intensity = 5.0;
  /// kBursty only: long-run fraction of time spent in the burst state.
  double burst_fraction = 0.2;
  /// kPoisson only: deterministic stress windows (sorted ascending,
  /// non-overlapping) inside which the instantaneous arrival rate is
  /// arrival_rate * stress_multiplier — a piecewise-constant-rate Poisson
  /// process. Empty (the default) keeps the paper's homogeneous Poisson
  /// process with bit-identical draws; the adversarial scenario director
  /// (sim/adversary.hpp) installs windows timed to coincide with correlated
  /// outages. Note: non-empty windows change the stream consumption even
  /// with stress_multiplier == 1 (rate boundaries force redraws).
  std::vector<grid::StressWindow> stress_windows;
  double stress_multiplier = 1.0;

  [[nodiscard]] std::string name() const;
};

/// Effective delivered power of a grid: total power x availability x
/// checkpoint efficiency tau / (tau + C), with tau from Young's formula.
/// This is the paper's "computing power of the Grid scaled down to take into
/// account the availability of resources and the cost and frequency of each
/// checkpoint".
[[nodiscard]] double effective_grid_power(const grid::GridConfig& config);

/// lambda achieving target utilization U: lambda = U * P_eff / S.
[[nodiscard]] double arrival_rate_for_utilization(double utilization, double bag_size,
                                                  double effective_power);

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, rng::RandomStream stream);

  /// Generates the full arrival sequence (deterministic for a given stream).
  [[nodiscard]] std::vector<BotSpec> generate();

  /// generate() into a caller-owned buffer, reusing its capacity — and the
  /// per-bag task vectors' capacity — across calls. Identical output to
  /// generate(); sim::SimulationWorkspace uses this to keep steady-state
  /// replications allocation-free.
  void generate_into(std::vector<BotSpec>& out);

  /// Generates a single bag of the given type arriving at `arrival_time`.
  [[nodiscard]] BotSpec make_bot(BotId id, double arrival_time, const BotType& type);

  /// make_bot() into a caller-owned spec, reusing its task-vector capacity.
  void make_bot_into(BotSpec& out, BotId id, double arrival_time, const BotType& type);

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

 private:
  /// Advances the arrival clock by one inter-arrival per the configured
  /// process; returns the next arrival time.
  [[nodiscard]] double next_arrival(double clock);
  /// kPoisson with stress windows: exact piecewise-constant-rate thinning by
  /// redraw-at-boundary (memorylessness makes advancing to a rate boundary
  /// and redrawing statistically exact).
  [[nodiscard]] double next_piecewise_poisson(double clock);

  WorkloadConfig config_;
  rng::RandomStream stream_;
  // kBursty state: time remaining in the current MMPP state and whether it
  // is the burst state.
  bool in_burst_ = false;
  double state_remaining_ = 0.0;
};

}  // namespace dg::workload
