// Workload traces: save and replay BoT submission streams.
//
// A workload trace records every bag (arrival time, granularity label) and
// every task's work amount, so a synthetic — or real — submission log can be
// replayed bit-for-bit across schedulers and machine configurations.
//
// CSV format (header + one row per task):
//   bot,arrival,granularity,task,work
#pragma once

#include <iosfwd>
#include <vector>

#include "workload/bot.hpp"

namespace dg::workload {

/// Writes all bags of `bots` (one row per task).
void save_workload_csv(std::ostream& os, const std::vector<BotSpec>& bots);

/// Parses a workload trace. Bags are returned in arrival order; throws
/// std::runtime_error on malformed input (bad header/fields, non-monotone
/// arrivals after sorting is NOT enforced — arrivals are sorted on load).
[[nodiscard]] std::vector<BotSpec> load_workload_csv(std::istream& is);

}  // namespace dg::workload
