// Bag-of-Tasks application descriptions (static workload side).
//
// A BotSpec is what a user submits: a set of independent tasks, each with a
// work amount expressed as execution time on the paper's reference machine
// (P = 1). Runtime state (replicas, queues, progress) lives in sched/.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace dg::workload {

using BotId = std::uint32_t;
using TaskIndex = std::uint32_t;

struct TaskSpec {
  /// Work amount == execution time in seconds on a P = 1 machine.
  double work = 0.0;
};

struct BotSpec {
  BotId id = 0;
  /// Submission time (seconds since simulation start).
  double arrival_time = 0.0;
  /// Mean task size this bag was generated from (reporting only).
  double granularity = 0.0;
  std::vector<TaskSpec> tasks;

  [[nodiscard]] double total_work() const noexcept {
    double sum = 0.0;
    for (const TaskSpec& task : tasks) sum += task.work;
    return sum;
  }
  [[nodiscard]] std::size_t size() const noexcept { return tasks.size(); }
};

}  // namespace dg::workload
