#include "workload/generator.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "grid/checkpoint_server.hpp"
#include "util/assert.hpp"

namespace dg::workload {

std::string to_string(Intensity intensity) {
  switch (intensity) {
    case Intensity::kLow: return "Low";
    case Intensity::kMed: return "Med";
    case Intensity::kHigh: return "High";
  }
  return "?";
}

double utilization_for(Intensity intensity) noexcept {
  switch (intensity) {
    case Intensity::kLow: return 0.50;
    case Intensity::kMed: return 0.75;
    case Intensity::kHigh: return 0.90;
  }
  return 0.5;
}

namespace {
std::string ascii_lower(std::string_view text) {
  std::string out;
  for (char c : text) out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  return out;
}
}  // namespace

std::optional<Intensity> parse_intensity(std::string_view name) {
  const std::string lower = ascii_lower(name);
  if (lower == "low") return Intensity::kLow;
  if (lower == "med" || lower == "medium") return Intensity::kMed;
  if (lower == "high") return Intensity::kHigh;
  return std::nullopt;
}

std::optional<ArrivalProcess> parse_arrival_process(std::string_view name) {
  const std::string lower = ascii_lower(name);
  if (lower == "poisson") return ArrivalProcess::kPoisson;
  if (lower == "uniformjitter" || lower == "uniform" || lower == "jitter") {
    return ArrivalProcess::kUniformJitter;
  }
  if (lower == "bursty") return ArrivalProcess::kBursty;
  return std::nullopt;
}

std::string to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "Poisson";
    case ArrivalProcess::kUniformJitter: return "UniformJitter";
    case ArrivalProcess::kBursty: return "Bursty";
  }
  return "?";
}

std::string WorkloadConfig::name() const {
  std::ostringstream oss;
  oss << "bots=" << num_bots << " S=" << bag_size << " lambda=" << arrival_rate << " gran={";
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (i != 0) oss << ",";
    oss << types[i].granularity;
  }
  oss << "}";
  return oss.str();
}

double effective_grid_power(const grid::GridConfig& config) {
  double power = config.total_power;
  const grid::AvailabilityModel& avail = config.availability;
  power *= avail.availability();
  if (avail.failures_enabled) {
    const double cost = config.checkpoint_transfer.mean();
    const double interval = grid::young_checkpoint_interval(cost, avail.mttf());
    power *= interval / (interval + cost);
  }
  return power;
}

double arrival_rate_for_utilization(double utilization, double bag_size, double effective_power) {
  if (!(utilization > 0.0)) {
    throw std::invalid_argument("arrival_rate_for_utilization: utilization must be positive");
  }
  if (!(bag_size > 0.0) || !(effective_power > 0.0)) {
    throw std::invalid_argument("arrival_rate_for_utilization: bag_size and power must be positive");
  }
  const double demand = bag_size / effective_power;  // D: seconds of grid time per bag
  return utilization / demand;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, rng::RandomStream stream)
    : config_(std::move(config)), stream_(stream) {
  if (config_.types.empty()) {
    throw std::invalid_argument("WorkloadGenerator: need at least one BoT type");
  }
  if (!(config_.bag_size > 0.0)) {
    throw std::invalid_argument("WorkloadGenerator: bag_size must be positive");
  }
  if (!(config_.arrival_rate > 0.0)) {
    throw std::invalid_argument("WorkloadGenerator: arrival_rate must be positive");
  }
  if (config_.arrivals == ArrivalProcess::kBursty) {
    if (!(config_.burst_intensity > 1.0) || !(config_.burst_fraction > 0.0) ||
        !(config_.burst_fraction < 1.0)) {
      throw std::invalid_argument(
          "WorkloadGenerator: bursty arrivals need burst_intensity > 1 and "
          "burst_fraction in (0, 1)");
    }
  }
  if (!config_.stress_windows.empty()) {
    if (config_.arrivals != ArrivalProcess::kPoisson) {
      throw std::invalid_argument(
          "WorkloadGenerator: stress windows require Poisson arrivals");
    }
    if (!(config_.stress_multiplier >= 1.0)) {
      throw std::invalid_argument(
          "WorkloadGenerator: stress_multiplier must be >= 1");
    }
    for (std::size_t i = 0; i < config_.stress_windows.size(); ++i) {
      const grid::StressWindow& window = config_.stress_windows[i];
      if (!(window.end > window.start) ||
          (i > 0 && window.start < config_.stress_windows[i - 1].end)) {
        throw std::invalid_argument(
            "WorkloadGenerator: stress windows must be sorted and non-overlapping "
            "with end > start");
      }
    }
  }
}

double WorkloadGenerator::next_arrival(double clock) {
  const double mean_interarrival = 1.0 / config_.arrival_rate;
  switch (config_.arrivals) {
    case ArrivalProcess::kPoisson:
      if (!config_.stress_windows.empty()) return next_piecewise_poisson(clock);
      return clock + stream_.exponential_mean(mean_interarrival);
    case ArrivalProcess::kUniformJitter:
      return clock + stream_.uniform(0.5 * mean_interarrival, 1.5 * mean_interarrival);
    case ArrivalProcess::kBursty: {
      // Two-state MMPP. Burst rate is burst_intensity * base; the off rate is
      // solved so the long-run mean stays at arrival_rate. State holding
      // times are exponential with a cycle of ~20 mean inter-arrivals.
      const double bf = config_.burst_fraction;
      const double bi = config_.burst_intensity;
      double burst_rate = bi * config_.arrival_rate;
      double off_rate = config_.arrival_rate * (1.0 - bf * bi) / (1.0 - bf);
      if (off_rate < 0.0) {  // bursts alone exceed the mean: cap them
        burst_rate = config_.arrival_rate / bf;
        off_rate = 0.0;
      }
      const double cycle = 20.0 * mean_interarrival;
      for (;;) {
        if (state_remaining_ <= 0.0) {
          // (Re)enter a state; start from the off state at t=0.
          state_remaining_ = stream_.exponential_mean(
              in_burst_ ? (1.0 - bf) * cycle : bf * cycle);
          in_burst_ = !in_burst_;
        }
        const double rate = in_burst_ ? burst_rate : off_rate;
        if (rate <= 0.0) {
          clock += state_remaining_;
          state_remaining_ = 0.0;
          continue;
        }
        const double gap = stream_.exponential_mean(1.0 / rate);
        if (gap <= state_remaining_) {
          state_remaining_ -= gap;
          return clock + gap;
        }
        clock += state_remaining_;
        state_remaining_ = 0.0;
      }
    }
  }
  return clock + stream_.exponential_mean(mean_interarrival);
}

double WorkloadGenerator::next_piecewise_poisson(double clock) {
  // Exact sampling of a piecewise-constant-rate Poisson process: draw an
  // exponential gap at the current segment's rate; if it would cross the
  // next rate boundary, advance the clock to the boundary and redraw there
  // (memorylessness makes the restart statistically exact).
  const double base_rate = config_.arrival_rate;
  for (;;) {
    double rate = base_rate;
    double boundary = std::numeric_limits<double>::infinity();
    for (const grid::StressWindow& window : config_.stress_windows) {
      if (window.contains(clock)) {
        rate = base_rate * config_.stress_multiplier;
        boundary = window.end;
        break;
      }
      if (window.start > clock) {
        boundary = window.start;
        break;
      }
    }
    const double gap = stream_.exponential_mean(1.0 / rate);
    if (clock + gap < boundary) return clock + gap;
    clock = boundary;
  }
}

BotSpec WorkloadGenerator::make_bot(BotId id, double arrival_time, const BotType& type) {
  BotSpec bot;
  make_bot_into(bot, id, arrival_time, type);
  return bot;
}

void WorkloadGenerator::make_bot_into(BotSpec& out, BotId id, double arrival_time,
                                      const BotType& type) {
  DG_ASSERT(type.granularity > 0.0);
  DG_ASSERT(type.spread >= 0.0 && type.spread < 1.0);
  out.id = id;
  out.arrival_time = arrival_time;
  out.granularity = type.granularity;
  out.tasks.clear();  // capacity kept
  const double lo = (1.0 - type.spread) * type.granularity;
  const double hi = (1.0 + type.spread) * type.granularity;
  double accumulated = 0.0;
  while (accumulated < config_.bag_size) {
    const double work = stream_.uniform(lo, hi);
    out.tasks.push_back(TaskSpec{work});
    accumulated += work;
  }
}

std::vector<BotSpec> WorkloadGenerator::generate() {
  std::vector<BotSpec> bots;
  generate_into(bots);
  return bots;
}

void WorkloadGenerator::generate_into(std::vector<BotSpec>& out) {
  // resize (not clear+push_back) so surviving elements keep their task
  // vectors' capacity; make_bot_into overwrites every field.
  out.resize(config_.num_bots);
  double clock = 0.0;
  for (std::size_t i = 0; i < config_.num_bots; ++i) {
    clock = next_arrival(clock);
    const BotType& type =
        config_.types[config_.types.size() == 1
                          ? 0
                          : static_cast<std::size_t>(
                                stream_.uniform_int(0, config_.types.size() - 1))];
    make_bot_into(out[i], static_cast<BotId>(i), clock, type);
  }
}

}  // namespace dg::workload
