#include "workload/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dg::workload {

void save_workload_csv(std::ostream& os, const std::vector<BotSpec>& bots) {
  const auto saved_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "bot,arrival,granularity,task,work\n";
  for (const BotSpec& bot : bots) {
    for (std::size_t t = 0; t < bot.tasks.size(); ++t) {
      os << bot.id << ',' << bot.arrival_time << ',' << bot.granularity << ',' << t << ','
         << bot.tasks[t].work << '\n';
    }
  }
  os.precision(saved_precision);
}

std::vector<BotSpec> load_workload_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("bot,arrival,granularity,task,work", 0) != 0) {
    throw std::runtime_error("workload trace: missing or bad CSV header");
  }
  std::map<BotId, BotSpec> bots;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    auto next = [&](const char* what) {
      if (!std::getline(row, field, ',')) {
        throw std::runtime_error(std::string("workload trace: missing ") + what + " at line " +
                                 std::to_string(line_number));
      }
      return field;
    };
    try {
      const auto bot_id = static_cast<BotId>(std::stoul(next("bot")));
      const double arrival = std::stod(next("arrival"));
      const double granularity = std::stod(next("granularity"));
      const auto task_index = static_cast<std::size_t>(std::stoull(next("task")));
      const double work = std::stod(next("work"));
      if (work <= 0.0) {
        throw std::runtime_error("workload trace: non-positive work at line " +
                                 std::to_string(line_number));
      }
      BotSpec& bot = bots[bot_id];
      bot.id = bot_id;
      bot.arrival_time = arrival;
      bot.granularity = granularity;
      if (bot.tasks.size() <= task_index) bot.tasks.resize(task_index + 1);
      bot.tasks[task_index].work = work;
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("workload trace: unparsable field at line " +
                               std::to_string(line_number));
    } catch (const std::out_of_range&) {
      throw std::runtime_error("workload trace: out-of-range field at line " +
                               std::to_string(line_number));
    }
  }
  std::vector<BotSpec> result;
  result.reserve(bots.size());
  for (auto& [id, bot] : bots) {
    for (const TaskSpec& task : bot.tasks) {
      if (task.work <= 0.0) {
        throw std::runtime_error("workload trace: bot " + std::to_string(id) +
                                 " has a gap in its task indices");
      }
    }
    result.push_back(std::move(bot));
  }
  std::sort(result.begin(), result.end(),
            [](const BotSpec& a, const BotSpec& b) { return a.arrival_time < b.arrival_time; });
  return result;
}

}  // namespace dg::workload
