// Non-owning machine-transition callback: a (context, function-pointer) pair.
//
// Every availability source (AvailabilityProcess, OutageProcess, the trace
// and world-realization replay drivers) reports up/down edges through one of
// these. The previous std::function<void(Machine&)> carried type-erasure
// dispatch and potential heap allocation into the per-transition hot path;
// a delegate is two words, trivially copyable, and calls through a plain
// function pointer. It does NOT own its target — the bound object or callable
// must outlive the delegate (in practice: the ExecutionEngine or a test-local
// lambda, both of which outlive the simulation run).
#pragma once

#include <cstddef>

namespace dg::grid {

class Machine;

class TransitionDelegate {
 public:
  constexpr TransitionDelegate() noexcept = default;
  /// Allows the established `start(nullptr, nullptr)` call sites.
  constexpr TransitionDelegate(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Binds a member function: `TransitionDelegate::to<&Engine::on_failure>(engine)`.
  template <auto Method, class T>
  [[nodiscard]] static TransitionDelegate to(T& object) noexcept {
    return TransitionDelegate(&object, [](void* ctx, Machine& machine) {
      (static_cast<T*>(ctx)->*Method)(machine);
    });
  }

  /// Binds a callable by reference (lvalue only — the delegate does not own
  /// it). Typical use: a named test lambda observing transitions.
  template <class F>
  [[nodiscard]] static TransitionDelegate bind(F& callable) noexcept {
    return TransitionDelegate(&callable,
                              [](void* ctx, Machine& machine) { (*static_cast<F*>(ctx))(machine); });
  }

  void operator()(Machine& machine) const { fn_(ctx_, machine); }
  [[nodiscard]] explicit operator bool() const noexcept { return fn_ != nullptr; }

 private:
  using Fn = void (*)(void*, Machine&);

  constexpr TransitionDelegate(void* ctx, Fn fn) noexcept : ctx_(ctx), fn_(fn) {}

  void* ctx_ = nullptr;
  Fn fn_ = nullptr;
};

}  // namespace dg::grid
