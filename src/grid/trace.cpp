#include "grid/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "rng/random_stream.hpp"
#include "util/assert.hpp"

namespace dg::grid {

double MachineTrace::availability(double horizon) const noexcept {
  if (horizon <= 0.0) return 1.0;
  double down = 0.0;
  for (const DowntimeInterval& interval : downtime) {
    const double start = std::min(interval.start, horizon);
    const double end = std::min(interval.end, horizon);
    if (end > start) down += end - start;
  }
  return 1.0 - down / horizon;
}

double AvailabilityTrace::mean_availability(double horizon) const noexcept {
  if (machines_.empty()) return 1.0;
  double sum = 0.0;
  for (const MachineTrace& machine : machines_) sum += machine.availability(horizon);
  return sum / static_cast<double>(machines_.size());
}

AvailabilityTrace AvailabilityTrace::synthesize(const AvailabilityModel& model,
                                                std::size_t num_machines, double horizon,
                                                std::uint64_t seed) {
  std::vector<MachineTrace> machines(num_machines);
  if (!model.failures_enabled) return AvailabilityTrace(std::move(machines));
  for (std::size_t m = 0; m < num_machines; ++m) {
    rng::RandomStream stream = rng::RandomStream::derive(seed, "trace.availability", m);
    double clock = 0.0;
    MachineTrace& trace = machines[m];
    for (;;) {
      clock += model.time_to_failure.sample(stream);  // uptime
      if (clock >= horizon) break;
      const double repair = model.time_to_repair.sample(stream);
      trace.downtime.push_back({clock, clock + repair});
      clock += repair;
      if (clock >= horizon) break;
    }
  }
  return AvailabilityTrace(std::move(machines));
}

void AvailabilityTrace::save_csv(std::ostream& os) const {
  const auto saved_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "machine,down_start,down_end\n";
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    for (const DowntimeInterval& interval : machines_[m].downtime) {
      os << m << ',' << interval.start << ',' << interval.end << '\n';
    }
    if (machines_[m].downtime.empty()) {
      // Keep machine count recoverable even for always-up machines.
      os << m << ",,\n";
    }
  }
  os.precision(saved_precision);
}

AvailabilityTrace AvailabilityTrace::load_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("machine,down_start,down_end", 0) != 0) {
    throw std::runtime_error("AvailabilityTrace: missing or bad CSV header");
  }
  std::vector<MachineTrace> machines;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string machine_field, start_field, end_field;
    std::getline(row, machine_field, ',');
    std::getline(row, start_field, ',');
    std::getline(row, end_field, ',');
    std::size_t machine_index;
    try {
      machine_index = static_cast<std::size_t>(std::stoull(machine_field));
    } catch (const std::exception&) {
      throw std::runtime_error("AvailabilityTrace: bad machine id at line " +
                               std::to_string(line_number));
    }
    if (machines.size() <= machine_index) machines.resize(machine_index + 1);
    if (start_field.empty() && end_field.empty()) continue;  // up-only marker row
    double start, end;
    try {
      start = std::stod(start_field);
      end = std::stod(end_field);
    } catch (const std::exception&) {
      throw std::runtime_error("AvailabilityTrace: bad interval at line " +
                               std::to_string(line_number));
    }
    MachineTrace& machine = machines[machine_index];
    if (start < 0.0 || end < start) {
      throw std::runtime_error("AvailabilityTrace: negative or inverted interval at line " +
                               std::to_string(line_number));
    }
    if (!machine.downtime.empty() && start < machine.downtime.back().end) {
      throw std::runtime_error("AvailabilityTrace: overlapping intervals at line " +
                               std::to_string(line_number));
    }
    machine.downtime.push_back({start, end});
  }
  return AvailabilityTrace(std::move(machines));
}

void TraceAvailabilityDriver::start(TransitionCallback on_failure,
                                    TransitionCallback on_repair) {
  DG_ASSERT_MSG(!trace_.empty(), "TraceAvailabilityDriver: empty trace");
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  for (std::size_t m = 0; m < grid_.size(); ++m) {
    const MachineTrace& machine_trace = trace_.machine(m % trace_.num_machines());
    Machine* machine = &grid_.machine(m);
    for (const DowntimeInterval& interval : machine_trace.downtime) {
      if (interval.start < sim_.now()) continue;
      sim_.schedule_at(interval.start, [this, machine] {
        if (machine->force_down(sim_.now())) {
          if (on_failure_) on_failure_(*machine);
        }
      });
      sim_.schedule_at(interval.end, [this, machine] {
        if (machine->release_down(sim_.now())) {
          if (on_repair_) on_repair_(*machine);
        }
      });
    }
  }
}

}  // namespace dg::grid
