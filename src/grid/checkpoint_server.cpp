#include "grid/checkpoint_server.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace dg::grid {

CheckpointServerFaultProcess::CheckpointServerFaultProcess(des::Simulator& sim,
                                                           CheckpointServer& server,
                                                           CheckpointServerFaultModel model,
                                                           rng::RandomStream stream)
    : sim_(sim), server_(server), model_(model), stream_(stream) {}

void CheckpointServerFaultProcess::start(Callback on_down, Callback on_up) {
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
  if (!model_.enabled) return;
  DG_ASSERT_MSG(model_.mtbf > 0.0 && model_.mttr > 0.0,
                "CheckpointServerFaultProcess: MTBF and MTTR must be positive");
  sim_.schedule_after(stream_.exponential_mean(model_.mtbf), [this] { crash(); });
}

void CheckpointServerFaultProcess::crash() {
  // Only a real up -> down edge notifies the engine; the server may already
  // be down for another cause (an adversarial stress window).
  if (server_.force_down(sim_.now())) {
    if (on_down_) on_down_();
  }
  sim_.schedule_after(stream_.exponential_mean(model_.mttr), [this] { repair(); });
}

void CheckpointServerFaultProcess::repair() {
  if (server_.release_down(sim_.now())) {
    if (on_up_) on_up_();
  }
  sim_.schedule_after(stream_.exponential_mean(model_.mtbf), [this] { crash(); });
}

double young_checkpoint_interval(double mean_checkpoint_cost, double mttf) noexcept {
  return std::sqrt(2.0 * mean_checkpoint_cost * mttf);
}

}  // namespace dg::grid
