#include "grid/checkpoint_server.hpp"

#include <cmath>

namespace dg::grid {

double young_checkpoint_interval(double mean_checkpoint_cost, double mttf) noexcept {
  return std::sqrt(2.0 * mean_checkpoint_cost * mttf);
}

}  // namespace dg::grid
