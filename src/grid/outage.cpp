#include "grid/outage.hpp"

#include <algorithm>
#include <vector>

#include "grid/desktop_grid.hpp"
#include "util/assert.hpp"

namespace dg::grid {

OutageProcess::OutageProcess(des::Simulator& sim, DesktopGrid& grid, OutageModel model,
                             rng::RandomStream stream)
    : sim_(sim), grid_(grid), model_(model), stream_(stream) {
  DG_ASSERT(model.mean_interarrival > 0.0);
  DG_ASSERT(model.fraction > 0.0 && model.fraction <= 1.0);
}

void OutageProcess::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  if (!model_.enabled) return;
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  sim_.schedule_after(stream_.exponential_mean(model_.mean_interarrival), [this] { strike(); });
}

void OutageProcess::strike() {
  ++outages_;
  const std::size_t total = grid_.size();
  std::size_t count = static_cast<std::size_t>(model_.fraction * static_cast<double>(total));
  count = std::clamp<std::size_t>(count, 1, total);

  // Sample `count` distinct machines (partial Fisher-Yates over the ids).
  std::vector<std::size_t> ids(total);
  for (std::size_t i = 0; i < total; ++i) ids[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(stream_.uniform_int(0, total - 1 - i));
    std::swap(ids[i], ids[j]);
  }

  const double duration = std::max(1.0, model_.duration.sample(stream_));
  for (std::size_t i = 0; i < count; ++i) {
    Machine& machine = grid_.machine(ids[i]);
    ++machines_hit_;
    if (machine.force_down(sim_.now())) {
      if (on_failure_) on_failure_(machine);
    }
    // All hit machines come back together; each releases its own cause.
    sim_.schedule_after(duration, [this, &machine] {
      if (machine.release_down(sim_.now())) {
        if (on_repair_) on_repair_(machine);
      }
    });
  }

  sim_.schedule_after(stream_.exponential_mean(model_.mean_interarrival), [this] { strike(); });
}

}  // namespace dg::grid
