#include "grid/outage.hpp"

#include <algorithm>
#include <vector>

#include "grid/desktop_grid.hpp"
#include "util/assert.hpp"

namespace dg::grid {

OutageProcess::OutageProcess(des::Simulator& sim, DesktopGrid& grid, OutageModel model,
                             rng::RandomStream stream)
    : sim_(sim), grid_(grid), model_(model), stream_(stream) {
  DG_ASSERT(model.mean_interarrival > 0.0);
  DG_ASSERT(model.fraction > 0.0 && model.fraction <= 1.0);
}

void OutageProcess::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  if (!model_.enabled) return;
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  sim_.schedule_after(stream_.exponential_mean(model_.mean_interarrival), [this] { strike(); });
}

void OutageProcess::strike() {
  ++outages_;
  const std::size_t total = grid_.size();
  std::size_t count = static_cast<std::size_t>(model_.fraction * static_cast<double>(total));
  count = std::clamp<std::size_t>(count, 1, total);

  // Sample `count` distinct machines (partial Fisher-Yates over the ids).
  std::vector<std::size_t> ids(total);
  for (std::size_t i = 0; i < total; ++i) ids[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(stream_.uniform_int(0, total - 1 - i));
    std::swap(ids[i], ids[j]);
  }

  const double duration = std::max(1.0, model_.duration.sample(stream_));
  for (std::size_t i = 0; i < count; ++i) {
    Machine& machine = grid_.machine(ids[i]);
    ++machines_hit_;
    if (machine.force_down(sim_.now())) {
      if (on_failure_) on_failure_(machine);
    }
    // All hit machines come back together; each releases its own cause.
    sim_.schedule_after(duration, [this, &machine] {
      if (machine.release_down(sim_.now())) {
        if (on_repair_) on_repair_(machine);
      }
    });
  }

  sim_.schedule_after(stream_.exponential_mean(model_.mean_interarrival), [this] { strike(); });
}

ScheduledOutageProcess::ScheduledOutageProcess(des::Simulator& sim, DesktopGrid& grid,
                                               std::vector<StressWindow> windows, double fraction,
                                               rng::RandomStream stream)
    : sim_(sim), grid_(grid), windows_(std::move(windows)), fraction_(fraction),
      stream_(stream) {
  DG_ASSERT_MSG(fraction_ > 0.0 && fraction_ <= 1.0,
                "ScheduledOutageProcess: fraction must be in (0, 1]");
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    DG_ASSERT_MSG(windows_[i].end > windows_[i].start,
                  "ScheduledOutageProcess: window end must exceed its start");
    DG_ASSERT_MSG(i == 0 || windows_[i].start >= windows_[i - 1].start,
                  "ScheduledOutageProcess: windows must be sorted by start");
  }
}

void ScheduledOutageProcess::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  // One strike event per window, scheduled in window order — strikes fire in
  // ascending start time (ties resolve by this scheduling order), so victim
  // sampling consumes the stream in a deterministic sequence.
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    sim_.schedule_at(windows_[w].start, [this, w] { strike(w); });
  }
}

void ScheduledOutageProcess::strike(std::size_t window_index) {
  ++outages_;
  const StressWindow window = windows_[window_index];
  const std::size_t total = grid_.size();
  std::size_t count = static_cast<std::size_t>(fraction_ * static_cast<double>(total));
  count = std::clamp<std::size_t>(count, 1, total);

  // Sample `count` distinct machines (partial Fisher-Yates over the ids),
  // mirroring OutageProcess::strike() — but from this process's own stream.
  ids_.resize(total);
  for (std::size_t i = 0; i < total; ++i) ids_[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(stream_.uniform_int(0, total - 1 - i));
    std::swap(ids_[i], ids_[j]);
  }

  for (std::size_t i = 0; i < count; ++i) {
    Machine& machine = grid_.machine(ids_[i]);
    ++machines_hit_;
    if (machine.force_down(sim_.now())) {
      if (on_failure_) on_failure_(machine);
    }
    // All hit machines come back at the window's end; each releases its own
    // down-cause (composition with overlapping failure sources).
    sim_.schedule_at(window.end, [this, &machine] {
      if (machine.release_down(sim_.now())) {
        if (on_repair_) on_repair_(machine);
      }
    });
  }
}

}  // namespace dg::grid
