// Checkpoint Server model.
//
// The paper assumes one or more checkpoint servers storing task checkpoints;
// transferring a checkpoint to or from the server takes Uniform[240, 720]
// seconds. Checkpoint frequency follows Young's first-order formula
// tau = sqrt(2 * C * MTBF) with C the mean checkpoint save cost.
//
// Beyond the paper, the server optionally models *contention*: with a finite
// number of transfer slots, concurrent checkpoint traffic queues FIFO and
// transfers stretch accordingly. capacity == 0 (default) reproduces the
// paper's pure-delay behaviour. Slot reservations are not cancelled when the
// requesting machine dies mid-transfer — the server cannot know the client is
// gone — which slightly overstates contention under churn (documented).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/random_stream.hpp"

namespace dg::grid {

class CheckpointServer {
 public:
  explicit CheckpointServer(rng::UniformDist transfer_time = rng::UniformDist{240.0, 720.0},
                            std::size_t capacity = 0)
      : transfer_time_(transfer_time), capacity_(capacity) {}

  /// Schedules a checkpoint save starting no earlier than `now`; returns the
  /// absolute completion time (includes any queueing for a transfer slot).
  [[nodiscard]] double schedule_save(double now, rng::RandomStream& stream) {
    ++saves_;
    return schedule_transfer(now, transfer_time_.sample(stream));
  }

  /// Schedules a checkpoint retrieval; returns the absolute completion time.
  [[nodiscard]] double schedule_retrieve(double now, rng::RandomStream& stream) {
    ++retrievals_;
    return schedule_transfer(now, transfer_time_.sample(stream));
  }

  [[nodiscard]] double mean_transfer_time() const noexcept { return transfer_time_.mean(); }
  /// Transfer slots (0 = unlimited, the paper's model).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t saves() const noexcept { return saves_; }
  [[nodiscard]] std::uint64_t retrievals() const noexcept { return retrievals_; }
  /// Total time transfers spent queued for a slot.
  [[nodiscard]] double total_queueing_time() const noexcept { return total_queueing_; }

 private:
  /// Core contention model: with finite capacity, a transfer starts when the
  /// earliest slot frees (min-heap over slot free times).
  [[nodiscard]] double schedule_transfer(double now, double duration) {
    if (capacity_ == 0) return now + duration;
    if (slots_.size() < capacity_) {
      slots_.push(now + duration);
      return now + duration;
    }
    double start = slots_.top();
    if (start < now) start = now;
    slots_.pop();
    total_queueing_ += start - now;
    slots_.push(start + duration);
    return start + duration;
  }

  rng::UniformDist transfer_time_;
  std::size_t capacity_;
  std::uint64_t saves_ = 0;
  std::uint64_t retrievals_ = 0;
  double total_queueing_ = 0.0;
  // Min-heap of slot free times (only used when capacity_ > 0).
  std::priority_queue<double, std::vector<double>, std::greater<>> slots_;
};

/// Young's first-order optimal checkpoint interval: sqrt(2 * C * MTBF).
/// `mean_checkpoint_cost` is the mean save time, `mttf` the machine MTTF.
[[nodiscard]] double young_checkpoint_interval(double mean_checkpoint_cost, double mttf) noexcept;

}  // namespace dg::grid
