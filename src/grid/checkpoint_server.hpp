// Checkpoint Server model.
//
// The paper assumes one or more checkpoint servers storing task checkpoints;
// transferring a checkpoint to or from the server takes Uniform[240, 720]
// seconds. Checkpoint frequency follows Young's first-order formula
// tau = sqrt(2 * C * MTBF) with C the mean checkpoint save cost.
//
// Beyond the paper, the server optionally models *contention*: with a finite
// number of transfer slots, concurrent checkpoint traffic queues FIFO and
// transfers stretch accordingly. capacity == 0 (default) reproduces the
// paper's pure-delay behaviour. Each transfer returns a Transfer ticket;
// when the requesting machine dies mid-transfer the execution engine cancels
// the ticket, which releases the unused tail of the slot reservation (set
// release_slots = false to reproduce the historical leak, where dead clients
// kept their slot reserved to the end and contention was overstated under
// churn).
//
// The server itself can also *fail* (CheckpointServerFaultModel): exponential
// MTBF/MTTR outages, optional mid-transfer aborts, optional loss of all
// stored checkpoints on a crash. The server only tracks its own up/down
// state and downtime; recovery semantics (retry, backoff, degradation) live
// in sim::ExecutionEngine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"
#include "rng/distributions.hpp"
#include "rng/random_stream.hpp"
#include "util/assert.hpp"

namespace dg::grid {

/// Failure model for the checkpoint server itself. Disabled by default: the
/// server is the paper's perfectly-reliable pure-delay component.
struct CheckpointServerFaultModel {
  bool enabled = false;
  /// Mean time between server failures (exponential). Must be positive when
  /// enabled.
  double mtbf = 86400.0;
  /// Mean repair duration (exponential). Must be positive when enabled.
  double mttr = 3600.0;
  /// A crash aborts every in-flight transfer (the client retries). When
  /// false, transfers survive outages (a resumable transfer protocol).
  bool abort_transfers = true;
  /// A crash wipes every stored checkpoint: tasks restart from scratch on
  /// their next retrieve. Implies transfer aborts (the wiped bytes cannot
  /// complete a transfer).
  bool lose_data = false;

  /// Long-run server availability implied by the means: MTBF/(MTBF+MTTR).
  [[nodiscard]] double availability() const noexcept {
    return enabled ? mtbf / (mtbf + mttr) : 1.0;
  }
};

class CheckpointServer {
 public:
  /// Sentinel slot id for unlimited-capacity transfers (nothing to release).
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Handle to one scheduled transfer, used to release its slot reservation
  /// if the client dies before `completion`.
  struct Transfer {
    double completion = 0.0;  ///< Absolute completion time (incl. queueing).
    double start = 0.0;       ///< When the transfer occupies its slot.
    std::uint32_t slot = kNoSlot;
  };

  explicit CheckpointServer(rng::UniformDist transfer_time = rng::UniformDist{240.0, 720.0},
                            std::size_t capacity = 0, bool release_slots = true)
      : transfer_time_(transfer_time), capacity_(capacity), release_slots_(release_slots) {
    if (capacity_ > 0) slot_ends_.reserve(capacity_);
  }

  /// Schedules a checkpoint save starting no earlier than `now`; the returned
  /// ticket's `completion` includes any queueing for a transfer slot.
  [[nodiscard]] Transfer begin_save(double now, rng::RandomStream& stream) {
    ++saves_;
    return schedule_transfer(now, transfer_time_.sample(stream));
  }

  /// Schedules a checkpoint retrieval; same contract as begin_save().
  [[nodiscard]] Transfer begin_retrieve(double now, rng::RandomStream& stream) {
    ++retrievals_;
    return schedule_transfer(now, transfer_time_.sample(stream));
  }

  /// Compatibility shims returning just the completion time.
  [[nodiscard]] double schedule_save(double now, rng::RandomStream& stream) {
    return begin_save(now, stream).completion;
  }
  [[nodiscard]] double schedule_retrieve(double now, rng::RandomStream& stream) {
    return begin_retrieve(now, stream).completion;
  }

  /// Releases the unused tail of a transfer whose client died (or timed out)
  /// at `now`: the slot frees that much earlier for later requests. No-op
  /// for unlimited capacity or when slot release is disabled (the documented
  /// historical leak, kept behind the flag for golden comparison).
  void cancel_transfer(const Transfer& transfer, double now) {
    if (transfer.slot == kNoSlot || !release_slots_) return;
    const double unused = transfer.completion - std::max(now, transfer.start);
    if (unused <= 0.0) return;
    slot_ends_[transfer.slot] -= unused;
    ++slots_released_;
  }

  // --- server availability (driven by CheckpointServerFaultProcess or tests) ---

  [[nodiscard]] bool up() const noexcept { return up_; }

  /// Marks the server down at `now`. Precondition: up.
  void set_down(double now) noexcept {
    DG_ASSERT_MSG(up_, "checkpoint server failed while already down");
    up_ = false;
    down_since_ = now;
    ++outage_count_;
  }

  /// Marks the server repaired at `now`. Precondition: down.
  void set_up(double now) noexcept {
    DG_ASSERT_MSG(!up_, "checkpoint server repaired while up");
    up_ = true;
    total_downtime_ += now - down_since_;
  }

  // --- overlapping down-causes (mirrors grid::Machine) ---
  //
  // The server can be down for several reasons at once: a stochastic
  // MTBF/MTTR fault AND an adversarial stress window. Down-ness is a cause
  // count; only edge crossings flip the up/down state (and should fire
  // engine callbacks). A single driver using force_down/release_down behaves
  // exactly like set_down/set_up.

  /// Adds a down-cause at `now`. Returns true iff the server just
  /// transitioned up -> down (callers fire on_server_down only then).
  bool force_down(double now) noexcept {
    ++down_causes_;
    if (down_causes_ == 1) {
      set_down(now);
      return true;
    }
    return false;
  }

  /// Removes one down-cause at `now`. Returns true iff the server just
  /// transitioned down -> up (callers fire on_server_up only then).
  bool release_down(double now) noexcept {
    DG_ASSERT_MSG(down_causes_ > 0, "release_down on an up checkpoint server");
    --down_causes_;
    if (down_causes_ == 0) {
      set_up(now);
      return true;
    }
    return false;
  }

  [[nodiscard]] int down_causes() const noexcept { return down_causes_; }

  [[nodiscard]] std::uint64_t outage_count() const noexcept { return outage_count_; }
  /// Cumulative downtime up to `now` (open outage included).
  [[nodiscard]] double total_downtime(double now) const noexcept {
    return total_downtime_ + (up_ ? 0.0 : now - down_since_);
  }

  // --- statistics ---

  [[nodiscard]] double mean_transfer_time() const noexcept { return transfer_time_.mean(); }
  /// Transfer slots (0 = unlimited, the paper's model).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t saves() const noexcept { return saves_; }
  [[nodiscard]] std::uint64_t retrievals() const noexcept { return retrievals_; }
  /// Total time transfers spent queued for a slot.
  [[nodiscard]] double total_queueing_time() const noexcept { return total_queueing_; }
  /// Reservations whose unused tail was released by cancel_transfer().
  [[nodiscard]] std::uint64_t slots_released() const noexcept { return slots_released_; }

 private:
  /// Core contention model: with finite capacity, a transfer starts when the
  /// earliest slot frees. Slot end times are kept per slot (not a heap) so a
  /// cancelled reservation can hand back its unused tail.
  [[nodiscard]] Transfer schedule_transfer(double now, double duration) {
    Transfer transfer;
    if (capacity_ == 0) {
      transfer.start = now;
      transfer.completion = now + duration;
      return transfer;
    }
    if (slot_ends_.size() < capacity_) {
      transfer.slot = static_cast<std::uint32_t>(slot_ends_.size());
      transfer.start = now;
      transfer.completion = now + duration;
      slot_ends_.push_back(transfer.completion);
      return transfer;
    }
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < slot_ends_.size(); ++i) {
      if (slot_ends_[i] < slot_ends_[best]) best = i;
    }
    double start = slot_ends_[best];
    if (start < now) start = now;
    total_queueing_ += start - now;
    transfer.slot = best;
    transfer.start = start;
    transfer.completion = start + duration;
    slot_ends_[best] = transfer.completion;
    return transfer;
  }

  rng::UniformDist transfer_time_;
  std::size_t capacity_;
  bool release_slots_;
  bool up_ = true;
  int down_causes_ = 0;
  double down_since_ = 0.0;
  double total_downtime_ = 0.0;
  std::uint64_t outage_count_ = 0;
  std::uint64_t saves_ = 0;
  std::uint64_t retrievals_ = 0;
  std::uint64_t slots_released_ = 0;
  double total_queueing_ = 0.0;
  // Per-slot end-of-reservation-chain times (only used when capacity_ > 0).
  std::vector<double> slot_ends_;
};

/// Drives the checkpoint server through alternating UP (exponential MTBF)
/// and DOWN (exponential MTTR) periods, mirroring grid::AvailabilityProcess
/// for machines. The process flips the server's state itself, then fires the
/// callback — callers (the execution engine) react to the new state. Draws
/// from its own RandomStream so enabling it perturbs no other stream.
class CheckpointServerFaultProcess {
 public:
  using Callback = std::function<void()>;

  CheckpointServerFaultProcess(des::Simulator& sim, CheckpointServer& server,
                               CheckpointServerFaultModel model, rng::RandomStream stream);

  /// Schedules the first crash (the server starts up). No-op when disabled.
  void start(Callback on_down, Callback on_up);

 private:
  void crash();
  void repair();

  des::Simulator& sim_;
  CheckpointServer& server_;
  CheckpointServerFaultModel model_;
  rng::RandomStream stream_;
  Callback on_down_;
  Callback on_up_;
};

/// Young's first-order optimal checkpoint interval: sqrt(2 * C * MTBF).
/// `mean_checkpoint_cost` is the mean save time, `mttf` the machine MTTF.
[[nodiscard]] double young_checkpoint_interval(double mean_checkpoint_cost, double mttf) noexcept;

}  // namespace dg::grid
