#include "grid/world_pool.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "util/binary_io.hpp"

namespace dg::grid {

namespace {

struct PoolFileHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t signature = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;  ///< fnv1a64_bytes over the payload.
};
static_assert(std::is_trivially_copyable_v<PoolFileHeader>);

constexpr char kMagic[8] = {'D', 'G', 'W', 'P', 'O', 'O', 'L', '\0'};

void put_distribution(std::vector<std::uint8_t>& out, const rng::Distribution& dist) {
  util::put_pod(out, static_cast<std::uint32_t>(dist.type_index()));
  dist.visit([&out](const auto& d) {
    using D = std::decay_t<decltype(d)>;
    if constexpr (std::is_same_v<D, rng::UniformDist>) {
      util::put_pod(out, d.lo);
      util::put_pod(out, d.hi);
    } else if constexpr (std::is_same_v<D, rng::ExponentialDist>) {
      util::put_pod(out, d.mean_value);
    } else if constexpr (std::is_same_v<D, rng::TruncatedNormalDist>) {
      util::put_pod(out, d.mu);
      util::put_pod(out, d.sigma);
      util::put_pod(out, d.lo);
      util::put_pod(out, d.hi);
    } else if constexpr (std::is_same_v<D, rng::WeibullDist>) {
      util::put_pod(out, d.shape);
      util::put_pod(out, d.scale);
    } else {
      static_assert(std::is_same_v<D, rng::ConstantDist>);
      util::put_pod(out, d.value);
    }
  });
}

[[nodiscard]] rng::Distribution read_distribution(util::ByteReader& reader) {
  switch (reader.pod<std::uint32_t>()) {
    case 0: {
      rng::UniformDist d;
      d.lo = reader.pod<double>();
      d.hi = reader.pod<double>();
      return d;
    }
    case 1: {
      rng::ExponentialDist d;
      d.mean_value = reader.pod<double>();
      return d;
    }
    case 2: {
      rng::TruncatedNormalDist d;
      d.mu = reader.pod<double>();
      d.sigma = reader.pod<double>();
      d.lo = reader.pod<double>();
      d.hi = reader.pod<double>();
      return d;
    }
    case 3: {
      rng::WeibullDist d;
      d.shape = reader.pod<double>();
      d.scale = reader.pod<double>();
      return d;
    }
    case 4: {
      rng::ConstantDist d;
      d.value = reader.pod<double>();
      return d;
    }
    default:
      throw std::runtime_error("WorldPool: unknown distribution tag");
  }
}

template <typename T>
void put_sized_array(std::vector<std::uint8_t>& out, const std::vector<T>& values) {
  util::put_pod(out, static_cast<std::uint64_t>(values.size()));
  util::put_array(out, values.data(), values.size());
}

template <typename T>
void read_sized_array(util::ByteReader& reader, std::vector<T>& out) {
  const auto count = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  // Guard the resize against a corrupt count before the checksum-validated
  // bytes are trusted for their length.
  if (reader.remaining() < count * sizeof(T)) {
    throw std::runtime_error("WorldPool: truncated array");
  }
  out.resize(count);
  reader.array(out.data(), count);
}

[[nodiscard]] std::vector<std::uint8_t> serialize_payload(const WorldRealization& world) {
  std::vector<std::uint8_t> out;
  out.reserve(256 + world.byte_size());
  util::put_pod(out, world.seed);
  util::put_pod(out, world.horizon);
  util::put_pod(out, static_cast<std::uint64_t>(world.num_machines));
  util::put_pod(out, world.machines_per_outage);

  util::put_pod(out, world.availability.time_to_failure.shape);
  util::put_pod(out, world.availability.time_to_failure.scale);
  util::put_pod(out, world.availability.time_to_repair.mu);
  util::put_pod(out, world.availability.time_to_repair.sigma);
  util::put_pod(out, world.availability.time_to_repair.lo);
  util::put_pod(out, world.availability.time_to_repair.hi);
  util::put_pod(out, static_cast<std::uint8_t>(world.availability.failures_enabled));

  util::put_pod(out, static_cast<std::uint8_t>(world.server_faults.enabled));
  util::put_pod(out, world.server_faults.mtbf);
  util::put_pod(out, world.server_faults.mttr);
  util::put_pod(out, static_cast<std::uint8_t>(world.server_faults.abort_transfers));
  util::put_pod(out, static_cast<std::uint8_t>(world.server_faults.lose_data));

  util::put_pod(out, static_cast<std::uint8_t>(world.outages.enabled));
  util::put_pod(out, world.outages.mean_interarrival);
  util::put_pod(out, world.outages.fraction);
  put_distribution(out, world.outages.duration);

  put_sized_array(out, world.machine_transitions);
  put_sized_array(out, world.machine_offsets);
  put_sized_array(out, world.server_transitions);
  put_sized_array(out, world.outage_times);
  put_sized_array(out, world.outage_durations);
  put_sized_array(out, world.outage_machines);
  return out;
}

[[nodiscard]] WorldRealization deserialize_payload(util::ByteReader& reader) {
  WorldRealization world;
  world.seed = reader.pod<std::uint64_t>();
  world.horizon = reader.pod<double>();
  world.num_machines = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  world.machines_per_outage = reader.pod<std::uint32_t>();

  world.availability.time_to_failure.shape = reader.pod<double>();
  world.availability.time_to_failure.scale = reader.pod<double>();
  world.availability.time_to_repair.mu = reader.pod<double>();
  world.availability.time_to_repair.sigma = reader.pod<double>();
  world.availability.time_to_repair.lo = reader.pod<double>();
  world.availability.time_to_repair.hi = reader.pod<double>();
  world.availability.failures_enabled = reader.pod<std::uint8_t>() != 0;

  world.server_faults.enabled = reader.pod<std::uint8_t>() != 0;
  world.server_faults.mtbf = reader.pod<double>();
  world.server_faults.mttr = reader.pod<double>();
  world.server_faults.abort_transfers = reader.pod<std::uint8_t>() != 0;
  world.server_faults.lose_data = reader.pod<std::uint8_t>() != 0;

  world.outages.enabled = reader.pod<std::uint8_t>() != 0;
  world.outages.mean_interarrival = reader.pod<double>();
  world.outages.fraction = reader.pod<double>();
  world.outages.duration = read_distribution(reader);

  read_sized_array(reader, world.machine_transitions);
  read_sized_array(reader, world.machine_offsets);
  read_sized_array(reader, world.server_transitions);
  read_sized_array(reader, world.outage_times);
  read_sized_array(reader, world.outage_durations);
  read_sized_array(reader, world.outage_machines);
  if (!reader.exhausted()) throw std::runtime_error("WorldPool: trailing bytes");
  return world;
}

/// The timeline-relevant model fields — the same set WorldCache::matches()
/// compares, so pool and in-process cache agree on what "the same world" is.
[[nodiscard]] bool models_match(const WorldRealization& world,
                                const AvailabilityModel& availability,
                                const CheckpointServerFaultModel& server_faults,
                                const OutageModel& outages, std::size_t num_machines) noexcept {
  return world.num_machines == num_machines &&
         world.availability.failures_enabled == availability.failures_enabled &&
         world.availability.time_to_failure == availability.time_to_failure &&
         world.availability.time_to_repair == availability.time_to_repair &&
         world.server_faults.enabled == server_faults.enabled &&
         world.server_faults.mtbf == server_faults.mtbf &&
         world.server_faults.mttr == server_faults.mttr &&
         world.outages.enabled == outages.enabled &&
         world.outages.mean_interarrival == outages.mean_interarrival &&
         world.outages.fraction == outages.fraction &&
         world.outages.duration == outages.duration;
}

/// RAII mmap of a whole file. `data` is null when the file is missing or
/// empty.
struct MappedFile {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                            fd, 0);
      if (mapped != MAP_FAILED) {
        data = static_cast<const std::uint8_t*>(mapped);
        size = static_cast<std::size_t>(st.st_size);
      }
    }
    ::close(fd);  // the mapping outlives the descriptor
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<std::uint8_t*>(data), size);
  }
};

/// RAII flock on `path` (created if missing). A crashed holder releases the
/// lock with its process; the lock file itself is tiny and left in place.
struct FileLock {
  int fd = -1;

  explicit FileLock(const std::string& path) {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) throw std::runtime_error("WorldPool: cannot open lock file " + path);
    while (::flock(fd, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd);
        throw std::runtime_error("WorldPool: flock failed on " + path);
      }
    }
  }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock() {
    if (fd >= 0) {
      ::flock(fd, LOCK_UN);
      ::close(fd);
    }
  }
};

void write_all(int fd, const void* data, std::size_t size, const std::string& path) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WorldPool: write failed on " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

WorldPool::WorldPool(std::string directory) : directory_(std::move(directory)) {
  if (::mkdir(directory_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("WorldPool: cannot create directory " + directory_);
  }
}

std::string WorldPool::world_path(std::uint64_t signature, std::uint64_t seed) const {
  char name[64];
  std::snprintf(name, sizeof(name), "/w%016llx_%016llx.world",
                static_cast<unsigned long long>(signature), static_cast<unsigned long long>(seed));
  return directory_ + name;
}

std::shared_ptr<const WorldRealization> WorldPool::try_load(
    const AvailabilityModel& availability, const CheckpointServerFaultModel& server_faults,
    const OutageModel& outages, std::size_t num_machines, double horizon, std::uint64_t seed,
    std::uint64_t signature) const {
  const MappedFile file(world_path(signature, seed));
  if (file.data == nullptr || file.size < sizeof(PoolFileHeader)) return nullptr;

  PoolFileHeader header;
  std::memcpy(&header, file.data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0 ||
      header.version != kFormatVersion || header.signature != signature ||
      header.payload_size != file.size - sizeof(PoolFileHeader)) {
    return nullptr;
  }
  const std::uint8_t* payload = file.data + sizeof(PoolFileHeader);
  if (util::fnv1a64_bytes(payload, header.payload_size) != header.checksum) return nullptr;

  try {
    util::ByteReader reader(payload, header.payload_size);
    WorldRealization world = deserialize_payload(reader);
    if (world.seed != seed || !world.covers(horizon) ||
        !models_match(world, availability, server_faults, outages, num_machines)) {
      return nullptr;
    }
    return std::make_shared<const WorldRealization>(std::move(world));
  } catch (const std::runtime_error&) {
    return nullptr;  // corrupt payload behind a stale checksum: treat as absent
  }
}

void WorldPool::publish(const WorldRealization& world, std::uint64_t signature) const {
  const std::vector<std::uint8_t> payload = serialize_payload(world);
  PoolFileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.signature = signature;
  header.payload_size = payload.size();
  header.checksum = util::fnv1a64_bytes(payload.data(), payload.size());

  const std::string final_path = world_path(signature, world.seed);
  const std::string temp_path = final_path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("WorldPool: cannot create " + temp_path);
  try {
    write_all(fd, &header, sizeof(header), temp_path);
    write_all(fd, payload.data(), payload.size(), temp_path);
    if (::fsync(fd) != 0) throw std::runtime_error("WorldPool: fsync failed on " + temp_path);
  } catch (...) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(temp_path.c_str());
    throw std::runtime_error("WorldPool: rename failed for " + final_path);
  }
}

WorldPool::Acquired WorldPool::acquire(const AvailabilityModel& availability,
                                       const CheckpointServerFaultModel& server_faults,
                                       const OutageModel& outages, std::size_t num_machines,
                                       double horizon, double synth_horizon, std::uint64_t seed,
                                       std::uint64_t signature, SynthesisScratch& scratch) {
  // Fast path: a covering file is already published — no lock taken.
  if (auto world =
          try_load(availability, server_faults, outages, num_machines, horizon, seed, signature)) {
    return Acquired{std::move(world), true};
  }

  // Build path: serialize builders per world across processes, and re-check
  // under the lock — a sibling may have published while we waited.
  const FileLock lock(world_path(signature, seed) + ".lock");
  if (auto world =
          try_load(availability, server_faults, outages, num_machines, horizon, seed, signature)) {
    return Acquired{std::move(world), true};
  }
  auto world = std::make_shared<const WorldRealization>(WorldRealization::synthesize(
      availability, server_faults, outages, num_machines, synth_horizon, seed, scratch));
  publish(*world, signature);
  return Acquired{std::move(world), false};
}

}  // namespace dg::grid
