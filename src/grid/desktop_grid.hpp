// Desktop Grid: a population of independently-owned machines.
//
// Grid construction follows the paper: fix a total computing power (P = 1000),
// then add machines until their powers sum to it. Hom grids use P_i = 10
// (exactly 100 machines); Het grids draw P_i ~ Uniform[2.3, 17.7] (about 100
// machines). Every machine gets an independent availability process.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <memory_resource>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "grid/availability.hpp"
#include "grid/checkpoint_server.hpp"
#include "grid/machine.hpp"
#include "grid/outage.hpp"
#include "grid/transition_delegate.hpp"
#include "rng/random_stream.hpp"

namespace dg::grid {

enum class Heterogeneity : std::uint8_t { kHom, kHet };

[[nodiscard]] std::string to_string(Heterogeneity het);

struct GridConfig {
  Heterogeneity heterogeneity = Heterogeneity::kHom;
  AvailabilityModel availability = AvailabilityModel::for_level(AvailabilityLevel::kHigh);
  /// Target total computing power; machines are added until reached.
  double total_power = 1000.0;
  /// Hom machine power.
  double hom_power = 10.0;
  /// Het power range (uniform).
  double het_power_lo = 2.3;
  double het_power_hi = 17.7;
  /// Checkpoint transfer time to/from the checkpoint server.
  rng::UniformDist checkpoint_transfer{240.0, 720.0};
  /// Concurrent transfer slots at the checkpoint server (0 = unlimited, the
  /// paper's pure-delay model).
  std::size_t checkpoint_server_capacity = 0;
  /// Release a reserved transfer slot when its client dies mid-transfer.
  /// Set false to reproduce the historical slot leak for golden comparison.
  bool checkpoint_server_release_slots = true;
  /// Checkpoint-server outages (disabled by default = paper's perfectly
  /// reliable server). Recovery semantics live in sim::ExecutionEngine.
  CheckpointServerFaultModel checkpoint_server_faults{};
  /// Correlated outages (disabled by default); composes with the
  /// per-machine availability model.
  OutageModel outages{};

  /// Paper preset, e.g. preset(kHet, kLow) = "Het-LowAvail".
  [[nodiscard]] static GridConfig preset(Heterogeneity het, AvailabilityLevel level);
  [[nodiscard]] std::string name() const;
};

class DesktopGrid final : public MachineAvailabilityListener {
 public:
  /// Non-owning (context, fn-pointer) pair — see grid/transition_delegate.hpp.
  using TransitionCallback = TransitionDelegate;

  /// Sentinel returned by first_available()/next_available() when no machine
  /// is up-and-idle.
  static constexpr MachineId kNoMachine = ~MachineId{0};

  /// Builds the machine population deterministically from `seed`. The
  /// machine/process storage and the free-machine bitmap allocate from `mem`
  /// (default: global heap; see sim::SimulationWorkspace).
  DesktopGrid(const GridConfig& config, des::Simulator& sim, std::uint64_t seed,
              std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  DesktopGrid(const DesktopGrid&) = delete;
  DesktopGrid& operator=(const DesktopGrid&) = delete;

  /// Starts every machine's availability process; transition callbacks fire
  /// on each failure/repair. Call once, before running the simulation.
  void start(TransitionCallback on_failure, TransitionCallback on_repair);

  /// Starts only the correlated-outage process — for runs whose per-machine
  /// availability is replayed by an external driver (a recorded trace or a
  /// grid::RealizedAvailabilityDriver) instead of the live processes.
  void start_outages(TransitionCallback on_failure, TransitionCallback on_repair);

  /// Starts only the per-machine availability processes — for runs whose
  /// correlated outages are replayed by a grid::RealizedOutageDriver instead
  /// of the live OutageProcess. start() == start_machines() + start_outages().
  void start_machines(TransitionCallback on_failure, TransitionCallback on_repair);

  [[nodiscard]] std::size_t size() const noexcept { return machines_.size(); }
  [[nodiscard]] Machine& machine(std::size_t i) { return machines_[i]; }
  [[nodiscard]] const Machine& machine(std::size_t i) const { return machines_[i]; }

  /// Sum of machine powers (>= config.total_power by construction).
  [[nodiscard]] double total_power() const noexcept { return total_power_; }
  [[nodiscard]] const GridConfig& config() const noexcept { return config_; }
  [[nodiscard]] CheckpointServer& checkpoint_server() noexcept { return checkpoint_server_; }

  /// Machines currently up and idle, in id order (deterministic dispatch).
  [[nodiscard]] std::vector<Machine*> available_machines();
  [[nodiscard]] std::size_t up_count() const noexcept;

  // --- free-machine index -------------------------------------------------
  //
  // A bitmap over machine ids, maintained from each machine's availability
  // edge transitions, so the dispatch loop pulls the lowest-id up-and-idle
  // machine in O(N/64) words instead of scanning every machine. The id order
  // is identical to the scan the index replaced.

  /// Lowest-id available machine, or kNoMachine.
  [[nodiscard]] MachineId first_available() const noexcept;
  /// Lowest-id available machine with id > `after`, or kNoMachine.
  [[nodiscard]] MachineId next_available(MachineId after) const noexcept;
  /// Number of up-and-idle machines (O(1)).
  [[nodiscard]] std::size_t available_count() const noexcept { return available_count_; }

  [[nodiscard]] const AvailabilityProcess& availability_process(std::size_t i) const {
    return processes_[i];
  }
  /// The correlated-outage process (present even when disabled).
  [[nodiscard]] const OutageProcess& outage_process() const noexcept { return *outages_; }
  [[nodiscard]] std::uint64_t total_failures() const noexcept;
  /// Power-weighted mean of measured per-machine availability.
  [[nodiscard]] double measured_availability(des::SimTime now) const noexcept;

 private:
  void on_machine_availability(Machine& machine, bool available) override;

  GridConfig config_;
  des::Simulator& sim_;
  // Deques for pointer stability (Machine*/process references are handed
  // out) with per-replication allocator reuse — see the constructor.
  std::pmr::deque<Machine> machines_;
  std::pmr::deque<AvailabilityProcess> processes_;
  std::unique_ptr<OutageProcess> outages_;
  CheckpointServer checkpoint_server_;
  double total_power_ = 0.0;
  /// One bit per machine id; set = available. Sized at construction.
  std::pmr::vector<std::uint64_t> available_bits_;
  std::size_t available_count_ = 0;
};

}  // namespace dg::grid
