#include "grid/realization.hpp"

#include <algorithm>
#include <utility>

#include "rng/random_stream.hpp"
#include "util/assert.hpp"

namespace dg::grid {

std::size_t WorldRealization::byte_size() const noexcept {
  return sizeof(WorldRealization) + machine_transitions.capacity() * sizeof(double) +
         machine_offsets.capacity() * sizeof(std::uint32_t) +
         server_transitions.capacity() * sizeof(double) +
         outage_times.capacity() * sizeof(double) +
         outage_durations.capacity() * sizeof(double) +
         outage_machines.capacity() * sizeof(std::uint32_t);
}

AvailabilityTrace WorldRealization::to_trace() const {
  std::vector<MachineTrace> machines(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    const std::uint32_t begin = machine_offsets[m];
    const std::uint32_t end = machine_offsets[m + 1];
    for (std::uint32_t i = begin; i + 1 < end; i += 2) {
      machines[m].downtime.push_back({machine_transitions[i], machine_transitions[i + 1]});
    }
  }
  return AvailabilityTrace(std::move(machines));
}

WorldRealization WorldRealization::synthesize(const AvailabilityModel& availability,
                                              const CheckpointServerFaultModel& server_faults,
                                              const OutageModel& outages,
                                              std::size_t num_machines, double horizon,
                                              std::uint64_t seed) {
  SynthesisScratch scratch;
  return synthesize(availability, server_faults, outages, num_machines, horizon, seed, scratch);
}

WorldRealization WorldRealization::synthesize(const AvailabilityModel& availability,
                                              const CheckpointServerFaultModel& server_faults,
                                              const OutageModel& outages,
                                              std::size_t num_machines, double horizon,
                                              std::uint64_t seed, SynthesisScratch& scratch) {
  DG_ASSERT_MSG(horizon > 0.0, "WorldRealization: horizon must be positive");
  WorldRealization world;
  world.availability = availability;
  world.server_faults = server_faults;
  world.outages = outages;
  world.seed = seed;
  world.horizon = horizon;
  world.num_machines = num_machines;

  // Phase one: draw. Run each RNG chain to past the horizon, landing the
  // absolute times in the reusable scratch buffers. The chains are inherently
  // serial (each draw feeds the next clock value, and the distributions
  // consume a variable number of underlying uniforms), so what this phase
  // buys is allocation behaviour: scratch capacity persists across calls, so
  // a warmed scratch draws with zero allocations.
  scratch.machine_times.clear();
  scratch.machine_counts.clear();
  scratch.server_times.clear();
  scratch.outage_times.clear();
  scratch.outage_durations.clear();
  scratch.outage_machines.clear();
  if (availability.failures_enabled) {
    scratch.machine_counts.reserve(num_machines);
    for (std::size_t m = 0; m < num_machines; ++m) {
      // Same stream, same draw order as the live AvailabilityProcess for
      // machine m. Event times in the live run accumulate as
      // t_{k+1} = t_k + sample (schedule_after on the exact fired time), so
      // `clock += sample` reproduces them bitwise.
      rng::RandomStream stream = rng::RandomStream::derive(seed, "grid.availability", m);
      const std::size_t start = scratch.machine_times.size();
      double clock = 0.0;
      for (std::size_t k = 0;; ++k) {
        clock += k % 2 == 0 ? availability.time_to_failure.sample(stream)
                            : availability.time_to_repair.sample(stream);
        scratch.machine_times.push_back(clock);
        if (clock > horizon) break;  // the dangling never-fired successor is kept
      }
      scratch.machine_counts.push_back(
          static_cast<std::uint32_t>(scratch.machine_times.size() - start));
    }
  }

  if (server_faults.enabled) {
    DG_ASSERT_MSG(server_faults.mtbf > 0.0 && server_faults.mttr > 0.0,
                  "WorldRealization: server MTBF and MTTR must be positive");
    rng::RandomStream stream = rng::RandomStream::derive(seed, "ckpt_server.faults");
    double clock = 0.0;
    for (std::size_t k = 0;; ++k) {
      clock += stream.exponential_mean(k % 2 == 0 ? server_faults.mtbf : server_faults.mttr);
      scratch.server_times.push_back(clock);
      if (clock > horizon) break;
    }
  }

  if (outages.enabled) {
    DG_ASSERT_MSG(outages.mean_interarrival > 0.0 &&
                      outages.fraction > 0.0 && outages.fraction <= 1.0,
                  "WorldRealization: outage model parameters out of range");
    // Same stream, same draw order as the live OutageProcess: the start()
    // inter-arrival, then per strike the victim draws (partial Fisher-Yates
    // over the ids), the duration, and the next inter-arrival. A strike at
    // exactly `horizon` still fires live, so it is recorded full; the first
    // strike strictly past the horizon is scheduled live but never fires —
    // recorded time-only (its victims/duration were never drawn).
    rng::RandomStream stream = rng::RandomStream::derive(seed, "grid.outages");
    std::size_t count =
        static_cast<std::size_t>(outages.fraction * static_cast<double>(num_machines));
    count = std::clamp<std::size_t>(count, 1, num_machines);
    world.machines_per_outage = static_cast<std::uint32_t>(count);
    double clock = stream.exponential_mean(outages.mean_interarrival);
    while (clock <= horizon) {
      scratch.outage_times.push_back(clock);
      scratch.outage_ids.resize(num_machines);
      for (std::size_t i = 0; i < num_machines; ++i) scratch.outage_ids[i] = i;
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(stream.uniform_int(0, num_machines - 1 - i));
        std::swap(scratch.outage_ids[i], scratch.outage_ids[j]);
        scratch.outage_machines.push_back(static_cast<std::uint32_t>(scratch.outage_ids[i]));
      }
      scratch.outage_durations.push_back(std::max(1.0, outages.duration.sample(stream)));
      clock += stream.exponential_mean(outages.mean_interarrival);
    }
    scratch.outage_times.push_back(clock);  // the dangling never-fired strike
  }

  // Phase two: fill. Size the published arrays exactly once and fill them
  // with flat copies — the offset table is a prefix sum over the per-machine
  // counts, the timelines are block copies of the scratch buffers. No
  // doubling growth or shrink_to_fit churn ever touches the arrays the
  // replay drivers walk.
  world.machine_offsets.resize(num_machines + 1);
  world.machine_offsets[0] = 0;
  if (availability.failures_enabled) {
    std::uint32_t total = 0;
    for (std::size_t m = 0; m < num_machines; ++m) {
      total += scratch.machine_counts[m];
      world.machine_offsets[m + 1] = total;
    }
    world.machine_transitions.assign(scratch.machine_times.begin(), scratch.machine_times.end());
  } else {
    std::fill(world.machine_offsets.begin(), world.machine_offsets.end(), 0U);
  }
  world.server_transitions.assign(scratch.server_times.begin(), scratch.server_times.end());
  world.outage_times.assign(scratch.outage_times.begin(), scratch.outage_times.end());
  world.outage_durations.assign(scratch.outage_durations.begin(), scratch.outage_durations.end());
  world.outage_machines.assign(scratch.outage_machines.begin(), scratch.outage_machines.end());
  return world;
}

void RealizedOutageDriver::start(TransitionDelegate on_failure, TransitionDelegate on_repair) {
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  if (!world_.outages.enabled) return;
  DG_ASSERT_MSG(world_.num_machines == grid_.size(),
                "RealizedOutageDriver: realization/grid machine count mismatch");
  DG_ASSERT_MSG(!world_.outage_times.empty(),
                "RealizedOutageDriver: enabled outage model with empty timeline");
  sim_.schedule_at(world_.outage_times[0], [this] { strike(); });
}

void RealizedOutageDriver::strike() {
  // Mirror OutageProcess::strike(): per victim apply the transition (callback
  // on a real up -> down edge only) and schedule its release, then schedule
  // the next strike. The last scheduled strike is the recorded dangling
  // past-horizon entry — it never fires (the assert below pins that).
  const std::uint32_t k = cursor_++;
  DG_ASSERT_MSG(k < world_.outage_durations.size(),
                "RealizedOutageDriver: replay ran past the recorded horizon");
  ++outages_;
  const double release_time = world_.outage_times[k] + world_.outage_durations[k];
  const std::uint32_t begin = k * world_.machines_per_outage;
  for (std::uint32_t i = begin; i < begin + world_.machines_per_outage; ++i) {
    Machine& machine = grid_.machine(world_.outage_machines[i]);
    ++machines_hit_;
    if (machine.force_down(sim_.now())) {
      if (on_failure_) on_failure_(machine);
    }
    sim_.schedule_at(release_time, [this, &machine] {
      if (machine.release_down(sim_.now())) {
        if (on_repair_) on_repair_(machine);
      }
    });
  }
  sim_.schedule_at(world_.outage_times[k + 1], [this] { strike(); });
}

void RealizedAvailabilityDriver::start(TransitionDelegate on_failure,
                                       TransitionDelegate on_repair) {
  DG_ASSERT_MSG(world_.num_machines == grid_.size(),
                "RealizedAvailabilityDriver: realization/grid machine count mismatch");
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  cursors_.machine.assign(grid_.size(), 0);
  // Machine-id order, one first-failure event per machine — the exact
  // scheduling sequence of DesktopGrid::start() over live processes.
  for (std::uint32_t m = 0; m < grid_.size(); ++m) {
    cursors_.machine[m] = world_.machine_offsets[m];
    if (cursors_.machine[m] == world_.machine_offsets[m + 1]) continue;  // failures disabled
    sim_.schedule_at(next_transition(m), [this, m] { fail(m); });
  }
}

double RealizedAvailabilityDriver::next_transition(std::uint32_t machine_index) {
  std::uint32_t& cursor = cursors_.machine[machine_index];
  DG_ASSERT_MSG(cursor < world_.machine_offsets[machine_index + 1],
                "RealizedAvailabilityDriver: replay ran past the recorded horizon");
  return world_.machine_transitions[cursor++];
}

void RealizedAvailabilityDriver::fail(std::uint32_t machine_index) {
  Machine& machine = grid_.machine(machine_index);
  // Mirror AvailabilityProcess::fail(): apply the transition (callback on a
  // real up -> down edge only) before scheduling the repair.
  if (machine.force_down(sim_.now())) {
    if (on_failure_) on_failure_(machine);
  }
  sim_.schedule_at(next_transition(machine_index), [this, machine_index] { repair(machine_index); });
}

void RealizedAvailabilityDriver::repair(std::uint32_t machine_index) {
  Machine& machine = grid_.machine(machine_index);
  if (machine.release_down(sim_.now())) {
    if (on_repair_) on_repair_(machine);
  }
  sim_.schedule_at(next_transition(machine_index), [this, machine_index] { fail(machine_index); });
}

void RealizedServerFaultDriver::start(Callback on_down, Callback on_up) {
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
  if (!world_.server_faults.enabled) return;
  DG_ASSERT_MSG(!world_.server_transitions.empty(),
                "RealizedServerFaultDriver: enabled fault model with empty timeline");
  sim_.schedule_at(next_transition(), [this] { crash(); });
}

double RealizedServerFaultDriver::next_transition() {
  DG_ASSERT_MSG(cursor_ < world_.server_transitions.size(),
                "RealizedServerFaultDriver: replay ran past the recorded horizon");
  return world_.server_transitions[cursor_++];
}

void RealizedServerFaultDriver::crash() {
  // Mirror CheckpointServerFaultProcess::crash(): transition through the
  // down-cause counting (callback on a real edge only — the server may
  // already be down for an adversarial stress window), then the successor.
  if (server_.force_down(sim_.now())) {
    if (on_down_) on_down_();
  }
  sim_.schedule_at(next_transition(), [this] { repair(); });
}

void RealizedServerFaultDriver::repair() {
  if (server_.release_down(sim_.now())) {
    if (on_up_) on_up_();
  }
  sim_.schedule_at(next_transition(), [this] { crash(); });
}

}  // namespace dg::grid
