#include "grid/realization.hpp"

#include <algorithm>
#include <utility>

#include "rng/random_stream.hpp"
#include "util/assert.hpp"

namespace dg::grid {

std::size_t WorldRealization::byte_size() const noexcept {
  return sizeof(WorldRealization) + machine_transitions.capacity() * sizeof(double) +
         machine_offsets.capacity() * sizeof(std::uint32_t) +
         server_transitions.capacity() * sizeof(double);
}

AvailabilityTrace WorldRealization::to_trace() const {
  std::vector<MachineTrace> machines(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    const std::uint32_t begin = machine_offsets[m];
    const std::uint32_t end = machine_offsets[m + 1];
    for (std::uint32_t i = begin; i + 1 < end; i += 2) {
      machines[m].downtime.push_back({machine_transitions[i], machine_transitions[i + 1]});
    }
  }
  return AvailabilityTrace(std::move(machines));
}

WorldRealization WorldRealization::synthesize(const AvailabilityModel& availability,
                                              const CheckpointServerFaultModel& server_faults,
                                              std::size_t num_machines, double horizon,
                                              std::uint64_t seed) {
  SynthesisScratch scratch;
  return synthesize(availability, server_faults, num_machines, horizon, seed, scratch);
}

WorldRealization WorldRealization::synthesize(const AvailabilityModel& availability,
                                              const CheckpointServerFaultModel& server_faults,
                                              std::size_t num_machines, double horizon,
                                              std::uint64_t seed, SynthesisScratch& scratch) {
  DG_ASSERT_MSG(horizon > 0.0, "WorldRealization: horizon must be positive");
  WorldRealization world;
  world.availability = availability;
  world.server_faults = server_faults;
  world.seed = seed;
  world.horizon = horizon;
  world.num_machines = num_machines;

  // Phase one: draw. Run each RNG chain to past the horizon, landing the
  // absolute times in the reusable scratch buffers. The chains are inherently
  // serial (each draw feeds the next clock value, and the distributions
  // consume a variable number of underlying uniforms), so what this phase
  // buys is allocation behaviour: scratch capacity persists across calls, so
  // a warmed scratch draws with zero allocations.
  scratch.machine_times.clear();
  scratch.machine_counts.clear();
  scratch.server_times.clear();
  if (availability.failures_enabled) {
    scratch.machine_counts.reserve(num_machines);
    for (std::size_t m = 0; m < num_machines; ++m) {
      // Same stream, same draw order as the live AvailabilityProcess for
      // machine m. Event times in the live run accumulate as
      // t_{k+1} = t_k + sample (schedule_after on the exact fired time), so
      // `clock += sample` reproduces them bitwise.
      rng::RandomStream stream = rng::RandomStream::derive(seed, "grid.availability", m);
      const std::size_t start = scratch.machine_times.size();
      double clock = 0.0;
      for (std::size_t k = 0;; ++k) {
        clock += k % 2 == 0 ? availability.time_to_failure.sample(stream)
                            : availability.time_to_repair.sample(stream);
        scratch.machine_times.push_back(clock);
        if (clock > horizon) break;  // the dangling never-fired successor is kept
      }
      scratch.machine_counts.push_back(
          static_cast<std::uint32_t>(scratch.machine_times.size() - start));
    }
  }

  if (server_faults.enabled) {
    DG_ASSERT_MSG(server_faults.mtbf > 0.0 && server_faults.mttr > 0.0,
                  "WorldRealization: server MTBF and MTTR must be positive");
    rng::RandomStream stream = rng::RandomStream::derive(seed, "ckpt_server.faults");
    double clock = 0.0;
    for (std::size_t k = 0;; ++k) {
      clock += stream.exponential_mean(k % 2 == 0 ? server_faults.mtbf : server_faults.mttr);
      scratch.server_times.push_back(clock);
      if (clock > horizon) break;
    }
  }

  // Phase two: fill. Size the published arrays exactly once and fill them
  // with flat copies — the offset table is a prefix sum over the per-machine
  // counts, the timelines are block copies of the scratch buffers. No
  // doubling growth or shrink_to_fit churn ever touches the arrays the
  // replay drivers walk.
  world.machine_offsets.resize(num_machines + 1);
  world.machine_offsets[0] = 0;
  if (availability.failures_enabled) {
    std::uint32_t total = 0;
    for (std::size_t m = 0; m < num_machines; ++m) {
      total += scratch.machine_counts[m];
      world.machine_offsets[m + 1] = total;
    }
    world.machine_transitions.assign(scratch.machine_times.begin(), scratch.machine_times.end());
  } else {
    std::fill(world.machine_offsets.begin(), world.machine_offsets.end(), 0U);
  }
  world.server_transitions.assign(scratch.server_times.begin(), scratch.server_times.end());
  return world;
}

void RealizedAvailabilityDriver::start(TransitionDelegate on_failure,
                                       TransitionDelegate on_repair) {
  DG_ASSERT_MSG(world_.num_machines == grid_.size(),
                "RealizedAvailabilityDriver: realization/grid machine count mismatch");
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  cursors_.machine.assign(grid_.size(), 0);
  // Machine-id order, one first-failure event per machine — the exact
  // scheduling sequence of DesktopGrid::start() over live processes.
  for (std::uint32_t m = 0; m < grid_.size(); ++m) {
    cursors_.machine[m] = world_.machine_offsets[m];
    if (cursors_.machine[m] == world_.machine_offsets[m + 1]) continue;  // failures disabled
    sim_.schedule_at(next_transition(m), [this, m] { fail(m); });
  }
}

double RealizedAvailabilityDriver::next_transition(std::uint32_t machine_index) {
  std::uint32_t& cursor = cursors_.machine[machine_index];
  DG_ASSERT_MSG(cursor < world_.machine_offsets[machine_index + 1],
                "RealizedAvailabilityDriver: replay ran past the recorded horizon");
  return world_.machine_transitions[cursor++];
}

void RealizedAvailabilityDriver::fail(std::uint32_t machine_index) {
  Machine& machine = grid_.machine(machine_index);
  // Mirror AvailabilityProcess::fail(): apply the transition (callback on a
  // real up -> down edge only) before scheduling the repair.
  if (machine.force_down(sim_.now())) {
    if (on_failure_) on_failure_(machine);
  }
  sim_.schedule_at(next_transition(machine_index), [this, machine_index] { repair(machine_index); });
}

void RealizedAvailabilityDriver::repair(std::uint32_t machine_index) {
  Machine& machine = grid_.machine(machine_index);
  if (machine.release_down(sim_.now())) {
    if (on_repair_) on_repair_(machine);
  }
  sim_.schedule_at(next_transition(machine_index), [this, machine_index] { fail(machine_index); });
}

void RealizedServerFaultDriver::start(Callback on_down, Callback on_up) {
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
  if (!world_.server_faults.enabled) return;
  DG_ASSERT_MSG(!world_.server_transitions.empty(),
                "RealizedServerFaultDriver: enabled fault model with empty timeline");
  sim_.schedule_at(next_transition(), [this] { crash(); });
}

double RealizedServerFaultDriver::next_transition() {
  DG_ASSERT_MSG(cursor_ < world_.server_transitions.size(),
                "RealizedServerFaultDriver: replay ran past the recorded horizon");
  return world_.server_transitions[cursor_++];
}

void RealizedServerFaultDriver::crash() {
  // Mirror CheckpointServerFaultProcess::crash(): state flip, callback, then
  // the successor.
  server_.set_down(sim_.now());
  if (on_down_) on_down_();
  sim_.schedule_at(next_transition(), [this] { repair(); });
}

void RealizedServerFaultDriver::repair() {
  server_.set_up(sim_.now());
  if (on_up_) on_up_();
  sim_.schedule_at(next_transition(), [this] { crash(); });
}

}  // namespace dg::grid
