// Correlated outages: groups of machines going down together.
//
// Independent per-machine churn (AvailabilityProcess) misses a failure mode
// that real Desktop Grids exhibit: a LAN segment reboot, a building power
// cut, or a lab closing for the night takes a *fraction of the grid* down at
// once. Correlated failures are the worst case for replication — replicas of
// a task are likely to die together — so schedulers that lean on replication
// lose their safety margin. OutageProcess composes with the per-machine
// processes via the machine's down-cause counting.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "grid/transition_delegate.hpp"
#include "rng/distributions.hpp"
#include "rng/random_stream.hpp"

namespace dg::grid {

class DesktopGrid;
class Machine;

/// A half-open absolute-time interval [start, end) of deliberately elevated
/// stress. The adversarial scenario director (sim/adversary.hpp) places
/// windows so arrival bursts, correlated machine outages, and
/// checkpoint-server downtime all coincide.
struct StressWindow {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  [[nodiscard]] bool contains(double t) const noexcept { return t >= start && t < end; }
  [[nodiscard]] bool operator==(const StressWindow&) const = default;
};

struct OutageModel {
  bool enabled = false;
  /// Mean time between outage events (exponential).
  double mean_interarrival = 86400.0;
  /// Fraction of the grid's machines hit by each outage (rounded down,
  /// minimum 1 machine).
  double fraction = 0.2;
  /// Outage duration; all affected machines come back together.
  rng::Distribution duration = rng::UniformDist{1800.0, 7200.0};

  /// Long-run availability loss caused by outages alone:
  /// fraction * E[duration] / mean_interarrival.
  [[nodiscard]] double availability_loss() const noexcept {
    return enabled ? fraction * duration.mean() / mean_interarrival : 0.0;
  }
};

class OutageProcess {
 public:
  /// Non-owning (context, fn-pointer) pair — see grid/transition_delegate.hpp.
  using TransitionCallback = TransitionDelegate;

  OutageProcess(des::Simulator& sim, DesktopGrid& grid, OutageModel model,
                rng::RandomStream stream);

  /// Schedules the first outage. Callbacks fire per machine, only on real
  /// up/down edges.
  void start(TransitionCallback on_failure, TransitionCallback on_repair);

  [[nodiscard]] std::uint64_t outages() const noexcept { return outages_; }
  [[nodiscard]] std::uint64_t machines_hit() const noexcept { return machines_hit_; }

 private:
  void strike();

  des::Simulator& sim_;
  DesktopGrid& grid_;
  OutageModel model_;
  rng::RandomStream stream_;
  TransitionCallback on_failure_;
  TransitionCallback on_repair_;
  std::uint64_t outages_ = 0;
  std::uint64_t machines_hit_ = 0;
};

/// Deterministically *timed* correlated outages: one outage per StressWindow,
/// starting at window.start and released at window.end. Unlike OutageProcess
/// (whose strike times are an exponential process), only the *victim set* is
/// random — sampled per window from the process's own stream, so enabling the
/// adversary perturbs no other stream. Composes with the stochastic
/// availability processes (and OutageProcess) through the machines'
/// down-cause counting.
class ScheduledOutageProcess {
 public:
  using TransitionCallback = TransitionDelegate;

  /// `windows` must be sorted ascending by start with end > start each;
  /// `fraction` of the grid (rounded down, minimum 1 machine) is hit per
  /// window.
  ScheduledOutageProcess(des::Simulator& sim, DesktopGrid& grid,
                         std::vector<StressWindow> windows, double fraction,
                         rng::RandomStream stream);

  /// Schedules one strike per window. Callbacks fire per machine, only on
  /// real up/down edges. Call once, before running.
  void start(TransitionCallback on_failure, TransitionCallback on_repair);

  [[nodiscard]] std::uint64_t outages() const noexcept { return outages_; }
  [[nodiscard]] std::uint64_t machines_hit() const noexcept { return machines_hit_; }

 private:
  void strike(std::size_t window_index);

  des::Simulator& sim_;
  DesktopGrid& grid_;
  std::vector<StressWindow> windows_;
  double fraction_;
  rng::RandomStream stream_;
  TransitionCallback on_failure_;
  TransitionCallback on_repair_;
  std::vector<std::size_t> ids_;  ///< Reused partial-Fisher-Yates buffer.
  std::uint64_t outages_ = 0;
  std::uint64_t machines_hit_ = 0;
};

}  // namespace dg::grid
