#include "grid/availability.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace dg::grid {

std::string to_string(AvailabilityLevel level) {
  switch (level) {
    case AvailabilityLevel::kHigh: return "HighAvail";
    case AvailabilityLevel::kMed: return "MedAvail";
    case AvailabilityLevel::kLow: return "LowAvail";
    case AvailabilityLevel::kAlways: return "AlwaysAvail";
  }
  return "?";
}

std::optional<AvailabilityLevel> parse_availability_level(std::string_view name) {
  std::string lower;
  for (char c : name) lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  if (lower == "highavail" || lower == "high") return AvailabilityLevel::kHigh;
  if (lower == "medavail" || lower == "med" || lower == "medium") return AvailabilityLevel::kMed;
  if (lower == "lowavail" || lower == "low") return AvailabilityLevel::kLow;
  if (lower == "alwaysavail" || lower == "always" || lower == "none") {
    return AvailabilityLevel::kAlways;
  }
  return std::nullopt;
}

double AvailabilityModel::availability() const noexcept {
  if (!failures_enabled) return 1.0;
  const double up = mttf();
  const double down = mttr();
  return up / (up + down);
}

AvailabilityModel AvailabilityModel::from_availability(double target, double weibull_shape,
                                                       double repair_mean, double repair_sd) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument("AvailabilityModel: target availability must be in (0, 1)");
  }
  AvailabilityModel model;
  const double mttf = target / (1.0 - target) * repair_mean;
  model.time_to_failure =
      rng::WeibullDist{weibull_shape, rng::WeibullDist::scale_for_mean(mttf, weibull_shape)};
  model.time_to_repair = rng::TruncatedNormalDist{repair_mean, repair_sd, 1.0, 1e9};
  model.failures_enabled = true;
  return model;
}

AvailabilityModel AvailabilityModel::for_level(AvailabilityLevel level) {
  switch (level) {
    case AvailabilityLevel::kHigh: return from_availability(0.98);
    case AvailabilityLevel::kMed: return from_availability(0.75);
    case AvailabilityLevel::kLow: return from_availability(0.50);
    case AvailabilityLevel::kAlways: {
      AvailabilityModel model;
      model.failures_enabled = false;
      return model;
    }
  }
  throw std::invalid_argument("AvailabilityModel: unknown level");
}

AvailabilityProcess::AvailabilityProcess(des::Simulator& sim, Machine& machine,
                                         AvailabilityModel model, rng::RandomStream stream)
    : sim_(sim), machine_(machine), model_(model), stream_(stream) {}

void AvailabilityProcess::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  DG_ASSERT_MSG(!started_, "AvailabilityProcess started twice");
  started_ = true;
  on_failure_ = on_failure;
  on_repair_ = on_repair;
  if (!model_.failures_enabled) return;
  const double ttf = model_.time_to_failure.sample(stream_);
  sim_.schedule_after(ttf, [this] { fail(); });
}

void AvailabilityProcess::fail() {
  ++failure_count_;
  // Only an up -> down edge notifies listeners; the machine may already be
  // down for another reason (e.g. a correlated outage).
  if (machine_.force_down(sim_.now())) {
    if (on_failure_) on_failure_(machine_);
  }
  const double ttr = model_.time_to_repair.sample(stream_);
  sim_.schedule_after(ttr, [this] { repair(); });
}

void AvailabilityProcess::repair() {
  if (machine_.release_down(sim_.now())) {
    if (on_repair_) on_repair_(machine_);
  }
  const double ttf = model_.time_to_failure.sample(stream_);
  sim_.schedule_after(ttf, [this] { fail(); });
}

double AvailabilityProcess::measured_availability(des::SimTime now) const noexcept {
  return machine_.measured_availability(now);
}

}  // namespace dg::grid
