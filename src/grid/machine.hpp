// A Desktop Grid machine.
//
// Machines carry a relative computing power P_i (work units per second; the
// paper's reference machine has P = 1) and an up/down state. A machine can be
// down for several overlapping reasons at once (its own crash AND a
// correlated outage), so down-ness is a cause count: force_down()/
// release_down() return whether the call crossed the up/down edge, and only
// edge crossings trigger scheduler/engine callbacks. The machine also
// accounts its own downtime so measured availability works for every failure
// source (stochastic processes, traces, outages).
//
// Occupancy (whether a replica is executing) is managed by the execution
// engine through set_busy(); the machine stays scheduler-agnostic.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace dg::grid {

using MachineId = std::uint32_t;

enum class MachineState : std::uint8_t { kUp, kDown };

class Machine;

/// Observer for a machine's available() edge transitions. A machine is
/// available iff it is up and not busy; every mutation that crosses that
/// boundary (set_busy, force_down, release_down) fires exactly one callback.
/// DesktopGrid implements this to keep its free-machine index current.
class MachineAvailabilityListener {
 public:
  virtual void on_machine_availability(Machine& machine, bool available) = 0;

 protected:
  ~MachineAvailabilityListener() = default;
};

class Machine {
 public:
  Machine(MachineId id, double power) : id_(id), power_(power) {
    DG_ASSERT_MSG(power > 0.0, "machine power must be positive");
  }

  [[nodiscard]] MachineId id() const noexcept { return id_; }
  /// Relative computing power (P=1 is the paper's reference machine).
  [[nodiscard]] double power() const noexcept { return power_; }

  [[nodiscard]] MachineState state() const noexcept {
    return down_causes_ == 0 ? MachineState::kUp : MachineState::kDown;
  }
  [[nodiscard]] bool up() const noexcept { return down_causes_ == 0; }
  /// Up and not executing a replica — eligible for dispatch.
  [[nodiscard]] bool available() const noexcept { return up() && !busy_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  void set_busy(bool busy) noexcept {
    if (busy_ == busy) return;
    const bool was_available = available();
    busy_ = busy;
    notify_availability(was_available);
  }

  /// Registers the (single) availability listener; nullptr detaches it.
  void set_availability_listener(MachineAvailabilityListener* listener) noexcept {
    listener_ = listener;
  }

  /// Adds a down-cause at time `now`. Returns true iff the machine just
  /// transitioned up -> down (callers fire failure callbacks only then).
  bool force_down(double now) noexcept {
    const bool was_available = available();
    ++down_causes_;
    if (down_causes_ == 1) {
      down_since_ = now;
      ++failures_;
      notify_availability(was_available);
      return true;
    }
    return false;
  }

  /// Removes one down-cause at time `now`. Returns true iff the machine just
  /// transitioned down -> up (callers fire repair callbacks only then).
  bool release_down(double now) noexcept {
    DG_ASSERT_MSG(down_causes_ > 0, "release_down on an up machine");
    const bool was_available = available();
    --down_causes_;
    if (down_causes_ == 0) {
      total_downtime_ += now - down_since_;
      notify_availability(was_available);
      return true;
    }
    return false;
  }

  [[nodiscard]] int down_causes() const noexcept { return down_causes_; }

  /// Up -> down transitions so far.
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  /// Fraction of [0, now] the machine has been up.
  [[nodiscard]] double measured_availability(double now) const noexcept {
    if (now <= 0.0) return 1.0;
    double down = total_downtime_;
    if (!up()) down += now - down_since_;
    return 1.0 - down / now;
  }

 private:
  void notify_availability(bool was_available) noexcept {
    if (listener_ != nullptr && was_available != available()) {
      listener_->on_machine_availability(*this, available());
    }
  }

  MachineId id_;
  double power_;
  MachineAvailabilityListener* listener_ = nullptr;
  int down_causes_ = 0;
  bool busy_ = false;
  std::uint64_t failures_ = 0;
  double down_since_ = 0.0;
  double total_downtime_ = 0.0;
};

}  // namespace dg::grid
