// Machine availability traces.
//
// Desktop-grid studies (Nurmi/Brevik/Wolski, the Failure Trace Archive)
// record machine availability as alternating up/down intervals. This module
// lets dgsched (a) synthesize such traces from an AvailabilityModel, (b)
// save/load them as CSV, and (c) replay them — TraceAvailabilityDriver
// drives a DesktopGrid's machines from a trace instead of the stochastic
// availability processes, so experiments can be repeated against recorded
// (or real-world) machine behaviour.
//
// CSV format (header + one row per downtime interval):
//   machine,down_start,down_end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "des/simulator.hpp"
#include "grid/availability.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/transition_delegate.hpp"

namespace dg::grid {

struct DowntimeInterval {
  double start = 0.0;
  double end = 0.0;
};

struct MachineTrace {
  /// Downtime intervals, ascending and non-overlapping.
  std::vector<DowntimeInterval> downtime;

  /// Fraction of [0, horizon) the machine is up.
  [[nodiscard]] double availability(double horizon) const noexcept;
};

class AvailabilityTrace {
 public:
  AvailabilityTrace() = default;
  explicit AvailabilityTrace(std::vector<MachineTrace> machines)
      : machines_(std::move(machines)) {}

  [[nodiscard]] std::size_t num_machines() const noexcept { return machines_.size(); }
  [[nodiscard]] const MachineTrace& machine(std::size_t i) const { return machines_.at(i); }
  [[nodiscard]] bool empty() const noexcept { return machines_.empty(); }

  /// Mean availability over machines for [0, horizon).
  [[nodiscard]] double mean_availability(double horizon) const noexcept;

  /// Samples a trace from the Weibull/normal availability model, one
  /// independent process per machine, covering [0, horizon).
  [[nodiscard]] static AvailabilityTrace synthesize(const AvailabilityModel& model,
                                                    std::size_t num_machines, double horizon,
                                                    std::uint64_t seed);

  void save_csv(std::ostream& os) const;
  /// Throws std::runtime_error on malformed input (bad header, unordered or
  /// negative intervals).
  [[nodiscard]] static AvailabilityTrace load_csv(std::istream& is);

 private:
  std::vector<MachineTrace> machines_;
};

/// Replays a trace onto a grid: schedules the down/up transitions of
/// machine i from trace entry (i mod trace size). Use with a grid whose own
/// failure processes are disabled.
class TraceAvailabilityDriver {
 public:
  /// Non-owning (context, fn-pointer) pair — see grid/transition_delegate.hpp.
  using TransitionCallback = TransitionDelegate;

  TraceAvailabilityDriver(des::Simulator& sim, DesktopGrid& grid, AvailabilityTrace trace)
      : sim_(sim), grid_(grid), trace_(std::move(trace)) {}

  /// Schedules every transition; call once before running.
  void start(TransitionCallback on_failure, TransitionCallback on_repair);

 private:
  des::Simulator& sim_;
  DesktopGrid& grid_;
  AvailabilityTrace trace_;
  TransitionCallback on_failure_;
  TransitionCallback on_repair_;
};

}  // namespace dg::grid
