// World realizations: record-once / replay-many grid behaviour.
//
// The paper's methodology holds the grid realization fixed while varying the
// bag-selection policy (common random numbers), yet a live run re-samples
// every machine's Weibull/truncated-normal availability process — and the
// checkpoint server's exponential fault process — from scratch in every
// policy cell. A WorldRealization captures the policy-independent part of a
// replication once: the absolute transition times each process would have
// produced, synthesized on the *same* derived RNG streams in the same draw
// order, so replaying a realization is bit-identical to running the live
// processes (same event times, same scheduling sequence, same kernel
// counters).
//
// Layout is flat SoA: one double array of alternating fail/repair times for
// all machines, indexed by a per-machine offset table, plus one array of
// alternating down/up times for the checkpoint server. The replay drivers
// walk these arrays with cursors, scheduling events lazily — exactly one
// outstanding event per process, mirroring the live processes' scheduling
// pattern — so no RNG draw, distribution math, or std::function dispatch
// remains in the replay path.
//
// Recording rule: each sequence extends to the first transition strictly
// after `horizon`. A live process schedules its successor event even when
// that event lands past the run horizon (it is scheduled, never fired, and
// still consumes a kernel sequence number); the replay driver must be able
// to schedule that same dangling event, so it must be recorded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "grid/availability.hpp"
#include "grid/checkpoint_server.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/trace.hpp"
#include "grid/transition_delegate.hpp"

namespace dg::grid {

/// Reusable draw buffers for WorldRealization::synthesize() — phase one of
/// the draw-then-fill pipeline lands absolute transition times here before
/// the realization's exactly-sized arrays are filled. Keep one per thread
/// and pass it to every synthesize call to amortize growth.
struct SynthesisScratch {
  std::vector<double> machine_times;          ///< Concatenated per-machine draws.
  std::vector<std::uint32_t> machine_counts;  ///< Draws per machine.
  std::vector<double> server_times;           ///< Server fault-process draws.
  std::vector<double> outage_times;           ///< Outage strike times (+ dangling).
  std::vector<double> outage_durations;       ///< Per full strike.
  std::vector<std::uint32_t> outage_machines; ///< Victims, strike-major, hit order.
  std::vector<std::size_t> outage_ids;        ///< Partial-Fisher-Yates buffer.
};

/// The policy-independent stochastic behaviour of one replication's grid:
/// per-machine availability transitions and checkpoint-server fault
/// transitions, as absolute simulation times.
struct WorldRealization {
  /// The models this realization was synthesized from (used to verify cache
  /// hits and for diagnostics).
  AvailabilityModel availability{};
  CheckpointServerFaultModel server_faults{};
  OutageModel outages{};
  std::uint64_t seed = 0;
  /// Every per-process sequence covers at least [0, horizon]: it extends to
  /// the first transition strictly after `horizon`.
  double horizon = 0.0;
  std::size_t num_machines = 0;

  /// Alternating absolute transition times, fail/repair/fail/..., for all
  /// machines back to back; machine m owns
  /// [machine_offsets[m], machine_offsets[m + 1]). Empty per-machine ranges
  /// only when the availability model has failures disabled.
  std::vector<double> machine_transitions;
  std::vector<std::uint32_t> machine_offsets;  ///< num_machines + 1 entries.
  /// Alternating absolute server transition times, down/up/down/...; empty
  /// when the server fault model is disabled.
  std::vector<double> server_transitions;

  /// Correlated-outage timeline (empty when the outage model is disabled).
  /// Strike k <= horizon is "full": it records a duration and a fixed-stride
  /// victim list (machines_per_outage ids each, in live hit order). The final
  /// entry of `outage_times` is the dangling first strike strictly past the
  /// horizon — scheduled by a live run, never fired, so it records neither
  /// victims nor duration (the live process draws those only when the strike
  /// fires). outage_times.size() == outage_durations.size() + 1.
  std::vector<double> outage_times;
  std::vector<double> outage_durations;
  std::vector<std::uint32_t> outage_machines;  ///< Strike-major, hit order.
  /// Victims per strike: clamp(floor(fraction * num_machines), 1,
  /// num_machines) — constant across strikes, so no offset table is needed.
  std::uint32_t machines_per_outage = 0;

  /// True when the realization's sequences extend past `h`.
  [[nodiscard]] bool covers(double h) const noexcept { return h <= horizon; }
  /// Heap footprint (for the cache's byte budget).
  [[nodiscard]] std::size_t byte_size() const noexcept;

  /// Downtime-interval view of the machine timelines (complete fail/repair
  /// pairs; a dangling past-horizon failure is dropped, matching the event
  /// that would never have fired).
  [[nodiscard]] AvailabilityTrace to_trace() const;

  /// Synthesizes the realization for (models, machine count, seed), covering
  /// [0, horizon]. Draws from the same derived streams as the live processes
  /// — rng::RandomStream::derive(seed, "grid.availability", machine),
  /// derive(seed, "ckpt_server.faults") and derive(seed, "grid.outages") —
  /// in the same order, so the recorded times are bitwise equal to the event
  /// times a live run produces.
  ///
  /// Synthesis is a two-phase draw-then-fill pipeline: phase one runs the
  /// RNG chains and accumulates absolute transition times into the flat SoA
  /// buffers of a SynthesisScratch (growth amortizes across calls when the
  /// scratch is reused); phase two sizes the realization's arrays exactly
  /// once and fills them with flat block copies — no doubling reallocations
  /// or shrink_to_fit churn on the published arrays. The draw loops consume
  /// the streams in the exact live order (the truncated-normal rejection
  /// loop and the polar normal's cached spare make per-draw consumption
  /// variable, so draws cannot be chunked), which is what keeps recorded
  /// times bitwise equal to live event times.
  [[nodiscard]] static WorldRealization synthesize(const AvailabilityModel& availability,
                                                   const CheckpointServerFaultModel& server_faults,
                                                   const OutageModel& outages,
                                                   std::size_t num_machines, double horizon,
                                                   std::uint64_t seed);
  /// As above, drawing through `scratch` — reuse one scratch across
  /// synthesize calls (e.g. per thread) to amortize draw-buffer growth.
  [[nodiscard]] static WorldRealization synthesize(const AvailabilityModel& availability,
                                                   const CheckpointServerFaultModel& server_faults,
                                                   const OutageModel& outages,
                                                   std::size_t num_machines, double horizon,
                                                   std::uint64_t seed, SynthesisScratch& scratch);
};

/// Per-machine replay cursor storage, retained by sim::SimulationWorkspace
/// across replications so a warmed workspace replays without heap traffic.
struct ReplayCursors {
  std::vector<std::uint32_t> machine;
};

/// Replays a WorldRealization's machine timelines onto a grid, mirroring the
/// scheduling pattern of the live AvailabilityProcess exactly: one
/// outstanding event per machine, the transition applied (and the callback
/// fired) before the successor is scheduled. Use instead of
/// DesktopGrid::start() — pair with DesktopGrid::start_outages().
class RealizedAvailabilityDriver {
 public:
  RealizedAvailabilityDriver(des::Simulator& sim, DesktopGrid& grid,
                             const WorldRealization& world, ReplayCursors& cursors)
      : sim_(sim), grid_(grid), world_(world), cursors_(cursors) {}

  /// Schedules each machine's first failure (in machine-id order, matching
  /// DesktopGrid::start()). Call once, before running.
  void start(TransitionDelegate on_failure, TransitionDelegate on_repair);

 private:
  void fail(std::uint32_t machine_index);
  void repair(std::uint32_t machine_index);
  /// Consumes and returns machine m's next recorded transition time.
  [[nodiscard]] double next_transition(std::uint32_t machine_index);

  des::Simulator& sim_;
  DesktopGrid& grid_;
  const WorldRealization& world_;
  ReplayCursors& cursors_;
  TransitionDelegate on_failure_;
  TransitionDelegate on_repair_;
};

/// Replays a WorldRealization's correlated-outage timeline onto a grid,
/// mirroring OutageProcess event for event: strike k takes down its recorded
/// victims (callback on real edges only), schedules one release per victim at
/// strike time + recorded duration, then schedules the next strike — the
/// dangling past-horizon strike is scheduled and never fires, preserving
/// kernel sequence-number parity with the live process. Use instead of
/// DesktopGrid::start_outages().
class RealizedOutageDriver {
 public:
  RealizedOutageDriver(des::Simulator& sim, DesktopGrid& grid, const WorldRealization& world)
      : sim_(sim), grid_(grid), world_(world) {}

  /// Schedules the first strike (no-op when the outage model is disabled).
  /// Call once, before running.
  void start(TransitionDelegate on_failure, TransitionDelegate on_repair);

  [[nodiscard]] std::uint64_t outages() const noexcept { return outages_; }
  [[nodiscard]] std::uint64_t machines_hit() const noexcept { return machines_hit_; }

 private:
  void strike();

  des::Simulator& sim_;
  DesktopGrid& grid_;
  const WorldRealization& world_;
  TransitionDelegate on_failure_;
  TransitionDelegate on_repair_;
  std::uint32_t cursor_ = 0;  ///< Next strike index.
  std::uint64_t outages_ = 0;
  std::uint64_t machines_hit_ = 0;
};

/// Replays the checkpoint-server fault timeline, mirroring
/// CheckpointServerFaultProcess: apply the transition through the server's
/// down-cause counting (callback on real edges only), then schedule the
/// successor from the recorded array.
class RealizedServerFaultDriver {
 public:
  using Callback = std::function<void()>;

  RealizedServerFaultDriver(des::Simulator& sim, CheckpointServer& server,
                            const WorldRealization& world)
      : sim_(sim), server_(server), world_(world) {}

  /// Schedules the first crash. Call once, before running.
  void start(Callback on_down, Callback on_up);

 private:
  void crash();
  void repair();
  [[nodiscard]] double next_transition();

  des::Simulator& sim_;
  CheckpointServer& server_;
  const WorldRealization& world_;
  Callback on_down_;
  Callback on_up_;
  std::uint32_t cursor_ = 0;
};

}  // namespace dg::grid
