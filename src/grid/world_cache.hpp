// Shared world-realization cache.
//
// exp::ExperimentRunner compares policies under common random numbers: every
// policy cell of a figure panel re-runs the same replication seeds, so the
// grid behaviour (machine availability + checkpoint-server faults +
// correlated outages) of one replication is recomputed once per cell. This cache synthesizes each
// replication's WorldRealization once — keyed by (seed, models, machine
// count) — and hands the same immutable realization to every cell sharing
// it; cells replay it through the cursor drivers in grid/realization.hpp,
// bit-identically to the live processes.
//
// Memory is bounded by a byte budget (DGSCHED_WORLD_CACHE): when the resident
// realizations exceed it, least-recently-used entries are evicted — since the
// key includes the replication seed, this retires old replications' worlds as
// a sweep advances. Entries are handed out as shared_ptr, so an evicted
// realization stays valid for runs still replaying it.
//
// With an mmap world pool attached (attach_pool, grid/world_pool.hpp), a
// memory miss consults the pool's published files before synthesizing and
// publishes what it builds — the cross-process analogue of this cache, used
// by the sharded campaign runner so sibling worker processes pay one
// synthesis per world between them. Pool-served requests are counted as
// `pool_hits`, a class of their own: they are neither in-memory hits nor
// syntheses.
//
// Thread-safety: acquire() is safe from concurrent runner workers. Lookup,
// accounting, and eviction are guarded by one mutex; synthesis itself runs
// outside it (serialized per entry), so workers needing *different* worlds
// synthesize in parallel and workers needing the *same* world build it once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "grid/realization.hpp"

namespace dg::grid {

class WorldPool;

struct WorldCacheStats {
  std::uint64_t hits = 0;        ///< Served from a resident realization.
  std::uint64_t misses = 0;      ///< Synthesized fresh (absent in memory and pool).
  std::uint64_t extensions = 0;  ///< Resident but too short; re-synthesized longer.
  std::uint64_t pool_hits = 0;   ///< Loaded from the mmap pool (a sibling synthesized it).
  std::uint64_t evictions = 0;   ///< Entries dropped to stay within budget.
  std::size_t entries = 0;       ///< Resident entries at sampling time.
  std::size_t bytes = 0;         ///< Resident bytes at sampling time.
  std::size_t peak_bytes = 0;    ///< High-water resident bytes.

  /// Total acquire() calls, however they were served. Pool-served requests
  /// are their own class — counting them as misses would claim a synthesis
  /// that never ran; not counting them would make the rates sum past 1.
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + misses + extensions + pool_hits;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = lookups();
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
  /// Fraction of lookups served by another process's published world.
  [[nodiscard]] double pool_hit_rate() const noexcept {
    const std::uint64_t n = lookups();
    return n > 0 ? static_cast<double>(pool_hits) / static_cast<double>(n) : 0.0;
  }

  /// Aggregates another snapshot (e.g. a worker process's cache) into this
  /// one. Byte gauges take the max — they describe concurrent residency, not
  /// a sum over time.
  void merge(const WorldCacheStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    extensions += other.extensions;
    pool_hits += other.pool_hits;
    evictions += other.evictions;
    entries = entries > other.entries ? entries : other.entries;
    bytes = bytes > other.bytes ? bytes : other.bytes;
    peak_bytes = peak_bytes > other.peak_bytes ? peak_bytes : other.peak_bytes;
  }
};

class WorldCache {
 public:
  /// Default byte budget (256 MiB) — far above what a paper-scale sweep
  /// resident set needs, small next to the simulations themselves.
  static constexpr std::size_t kDefaultBudgetBytes = std::size_t{256} << 20;
  /// Synthesis margin over the requested horizon, so cells of one panel whose
  /// horizons differ slightly (arrival draws vary with granularity) share one
  /// realization instead of forcing per-cell extensions.
  static constexpr double kHorizonMargin = 1.25;

  explicit WorldCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  WorldCache(const WorldCache&) = delete;
  WorldCache& operator=(const WorldCache&) = delete;

  /// A realization of (models, machine count, seed) covering at least
  /// [0, horizon]. Served from cache when resident; synthesized (with
  /// kHorizonMargin headroom) and cached otherwise. The returned realization
  /// is immutable and remains valid after eviction.
  [[nodiscard]] std::shared_ptr<const WorldRealization> acquire(
      const AvailabilityModel& availability, const CheckpointServerFaultModel& server_faults,
      const OutageModel& outages, std::size_t num_machines, double horizon, std::uint64_t seed);

  /// Installs an mmap-shared world pool (grid/world_pool.hpp) behind the
  /// in-memory cache: a memory miss consults the pool before synthesizing,
  /// and a synthesized world is published for sibling processes. Call before
  /// the cache is shared between threads (the pointer itself is unguarded).
  void attach_pool(std::shared_ptr<WorldPool> pool) noexcept { pool_ = std::move(pool); }
  [[nodiscard]] const std::shared_ptr<WorldPool>& pool() const noexcept { return pool_; }

  [[nodiscard]] WorldCacheStats stats() const;
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_bytes_; }

  /// Model/machine-count signature — the stable hash that keys cache slots
  /// and pool file names. Exposed for the pool and its tests.
  [[nodiscard]] static std::uint64_t signature(const AvailabilityModel& availability,
                                               const CheckpointServerFaultModel& server_faults,
                                               const OutageModel& outages,
                                               std::size_t num_machines) noexcept;

 private:
  /// (replication seed, model/machine-count signature).
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  struct Slot {
    std::shared_ptr<const WorldRealization> world;  // guarded by WorldCache::mutex_
    std::size_t bytes = 0;                          // guarded by WorldCache::mutex_
    std::uint64_t last_use = 0;                     // guarded by WorldCache::mutex_
    std::mutex build;  ///< Serializes synthesis for this key only.
  };

  [[nodiscard]] static bool matches(const WorldRealization& world,
                                    const AvailabilityModel& availability,
                                    const CheckpointServerFaultModel& server_faults,
                                    const OutageModel& outages,
                                    std::size_t num_machines) noexcept;
  /// Drops LRU entries (never `keep`) until within budget. Requires mutex_.
  void evict_locked(const Key& keep);

  mutable std::mutex mutex_;
  std::shared_ptr<WorldPool> pool_;
  std::size_t budget_bytes_;
  std::map<Key, std::shared_ptr<Slot>> slots_;
  std::uint64_t tick_ = 0;
  WorldCacheStats stats_;
};

}  // namespace dg::grid
