#include "grid/desktop_grid.hpp"

#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace dg::grid {

std::string to_string(Heterogeneity het) {
  return het == Heterogeneity::kHom ? "Hom" : "Het";
}

GridConfig GridConfig::preset(Heterogeneity het, AvailabilityLevel level) {
  GridConfig config;
  config.heterogeneity = het;
  config.availability = AvailabilityModel::for_level(level);
  return config;
}

std::string GridConfig::name() const {
  std::string avail;
  if (!availability.failures_enabled) {
    avail = "AlwaysAvail";
  } else {
    const double a = availability.availability();
    if (a >= 0.90) avail = "HighAvail";
    else if (a >= 0.65) avail = "MedAvail";
    else avail = "LowAvail";
  }
  return to_string(heterogeneity) + "-" + avail;
}

DesktopGrid::DesktopGrid(const GridConfig& config, des::Simulator& sim, std::uint64_t seed,
                         std::pmr::memory_resource* mem)
    : config_(config), sim_(sim), machines_(mem), processes_(mem),
      checkpoint_server_(config.checkpoint_transfer, config.checkpoint_server_capacity,
                         config.checkpoint_server_release_slots),
      available_bits_(mem) {
  DG_ASSERT(config.total_power > 0.0);
  rng::RandomStream power_stream = rng::RandomStream::derive(seed, "grid.machine_power");
  MachineId next_id = 0;
  while (total_power_ < config_.total_power) {
    const double power = config_.heterogeneity == Heterogeneity::kHom
                             ? config_.hom_power
                             : power_stream.uniform(config_.het_power_lo, config_.het_power_hi);
    machines_.emplace_back(next_id, power);
    total_power_ += power;
    ++next_id;
  }
  for (Machine& machine : machines_) {
    processes_.emplace_back(sim_, machine, config_.availability,
                            rng::RandomStream::derive(seed, "grid.availability", machine.id()));
  }
  outages_ = std::make_unique<OutageProcess>(sim_, *this, config_.outages,
                                             rng::RandomStream::derive(seed, "grid.outages"));

  // All machines start up and idle; seed the free-machine bitmap accordingly
  // and subscribe to every machine's availability edges.
  available_bits_.assign((machines_.size() + 63) / 64, 0);
  for (Machine& machine : machines_) {
    available_bits_[machine.id() / 64] |= std::uint64_t{1} << (machine.id() % 64);
    machine.set_availability_listener(this);
  }
  available_count_ = machines_.size();
}

void DesktopGrid::on_machine_availability(Machine& machine, bool available) {
  std::uint64_t& word = available_bits_[machine.id() / 64];
  const std::uint64_t bit = std::uint64_t{1} << (machine.id() % 64);
  // Edge-triggered by contract, so the bit always actually flips.
  DG_ASSERT(((word & bit) != 0) != available);
  word ^= bit;
  if (available) {
    ++available_count_;
  } else {
    --available_count_;
  }
}

MachineId DesktopGrid::first_available() const noexcept {
  for (std::size_t w = 0; w < available_bits_.size(); ++w) {
    if (available_bits_[w] != 0) {
      return static_cast<MachineId>(w * 64 +
                                    static_cast<std::size_t>(std::countr_zero(available_bits_[w])));
    }
  }
  return kNoMachine;
}

MachineId DesktopGrid::next_available(MachineId after) const noexcept {
  std::size_t w = (static_cast<std::size_t>(after) + 1) / 64;
  if (w >= available_bits_.size()) return kNoMachine;
  std::uint64_t word = available_bits_[w] &
                       ~((std::uint64_t{1} << ((static_cast<std::size_t>(after) + 1) % 64)) - 1);
  for (;;) {
    if (word != 0) {
      return static_cast<MachineId>(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
    }
    if (++w >= available_bits_.size()) return kNoMachine;
    word = available_bits_[w];
  }
}

void DesktopGrid::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  start_machines(on_failure, on_repair);
  start_outages(on_failure, on_repair);
}

void DesktopGrid::start_machines(TransitionCallback on_failure, TransitionCallback on_repair) {
  for (AvailabilityProcess& process : processes_) {
    process.start(on_failure, on_repair);
  }
}

void DesktopGrid::start_outages(TransitionCallback on_failure, TransitionCallback on_repair) {
  outages_->start(on_failure, on_repair);
}

std::vector<Machine*> DesktopGrid::available_machines() {
  std::vector<Machine*> result;
  result.reserve(available_count_);
  for (MachineId id = first_available(); id != kNoMachine; id = next_available(id)) {
    result.push_back(&machines_[id]);
  }
  return result;
}

std::size_t DesktopGrid::up_count() const noexcept {
  std::size_t count = 0;
  for (const Machine& machine : machines_) {
    if (machine.up()) ++count;
  }
  return count;
}

std::uint64_t DesktopGrid::total_failures() const noexcept {
  // Summed from the machines themselves so it also covers trace-driven
  // failures that bypass the stochastic availability processes.
  std::uint64_t count = 0;
  for (const Machine& machine : machines_) count += machine.failures();
  return count;
}

double DesktopGrid::measured_availability(des::SimTime now) const noexcept {
  double weighted = 0.0;
  for (const Machine& machine : machines_) {
    weighted += machine.power() * machine.measured_availability(now);
  }
  return total_power_ > 0.0 ? weighted / total_power_ : 1.0;
}

}  // namespace dg::grid
