#include "grid/desktop_grid.hpp"

#include <utility>

#include "util/assert.hpp"

namespace dg::grid {

std::string to_string(Heterogeneity het) {
  return het == Heterogeneity::kHom ? "Hom" : "Het";
}

GridConfig GridConfig::preset(Heterogeneity het, AvailabilityLevel level) {
  GridConfig config;
  config.heterogeneity = het;
  config.availability = AvailabilityModel::for_level(level);
  return config;
}

std::string GridConfig::name() const {
  std::string avail;
  if (!availability.failures_enabled) {
    avail = "AlwaysAvail";
  } else {
    const double a = availability.availability();
    if (a >= 0.90) avail = "HighAvail";
    else if (a >= 0.65) avail = "MedAvail";
    else avail = "LowAvail";
  }
  return to_string(heterogeneity) + "-" + avail;
}

DesktopGrid::DesktopGrid(const GridConfig& config, des::Simulator& sim, std::uint64_t seed)
    : config_(config), sim_(sim),
      checkpoint_server_(config.checkpoint_transfer, config.checkpoint_server_capacity) {
  DG_ASSERT(config.total_power > 0.0);
  rng::RandomStream power_stream = rng::RandomStream::derive(seed, "grid.machine_power");
  MachineId next_id = 0;
  while (total_power_ < config_.total_power) {
    const double power = config_.heterogeneity == Heterogeneity::kHom
                             ? config_.hom_power
                             : power_stream.uniform(config_.het_power_lo, config_.het_power_hi);
    machines_.push_back(std::make_unique<Machine>(next_id, power));
    total_power_ += power;
    ++next_id;
  }
  processes_.reserve(machines_.size());
  for (const auto& machine : machines_) {
    processes_.push_back(std::make_unique<AvailabilityProcess>(
        sim_, *machine, config_.availability,
        rng::RandomStream::derive(seed, "grid.availability", machine->id())));
  }
  outages_ = std::make_unique<OutageProcess>(sim_, *this, config_.outages,
                                             rng::RandomStream::derive(seed, "grid.outages"));
}

void DesktopGrid::start(TransitionCallback on_failure, TransitionCallback on_repair) {
  for (auto& process : processes_) {
    process->start(on_failure, on_repair);
  }
  outages_->start(on_failure, on_repair);
}

std::vector<Machine*> DesktopGrid::available_machines() {
  std::vector<Machine*> result;
  for (auto& machine : machines_) {
    if (machine->available()) result.push_back(machine.get());
  }
  return result;
}

std::size_t DesktopGrid::up_count() const noexcept {
  std::size_t count = 0;
  for (const auto& machine : machines_) {
    if (machine->up()) ++count;
  }
  return count;
}

std::uint64_t DesktopGrid::total_failures() const noexcept {
  // Summed from the machines themselves so it also covers trace-driven
  // failures that bypass the stochastic availability processes.
  std::uint64_t count = 0;
  for (const auto& machine : machines_) count += machine->failures();
  return count;
}

double DesktopGrid::measured_availability(des::SimTime now) const noexcept {
  double weighted = 0.0;
  for (const auto& machine : machines_) {
    weighted += machine->power() * machine->measured_availability(now);
  }
  return total_power_ > 0.0 ? weighted / total_power_ : 1.0;
}

}  // namespace dg::grid
