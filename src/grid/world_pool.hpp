// mmap-shared world-realization pool: WorldCache's cross-process sibling.
//
// The sharded campaign runner (exp/shard.hpp) forks N worker processes that
// all replay the same replications' worlds — without coordination each
// process would re-synthesize every WorldRealization, paying N synthesis
// costs per world where the threaded runner pays one. The pool makes the
// synthesized realization a file: the first process to need a world builds
// it under an exclusive file lock and publishes it atomically (write temp,
// fsync, rename), and every sibling then loads the published bytes instead
// of running the RNG chains again.
//
// File per world, keyed like WorldCache: `w<signature>_<seed>.world` inside
// the pool directory, where `signature` is WorldCache::signature() over the
// models and machine count. Each file is a versioned header (magic, format
// version, signature, payload size, FNV-1a checksum) followed by a payload
// of the serialized models and the flat SoA timeline arrays. Doubles are
// stored bitwise, so a loaded realization is bit-identical to the one the
// builder synthesized — the determinism contract of the sharded runner
// reduces to this property plus the fold order.
//
// Load is validate-then-copy: the file is mmap'd read-only, the header and
// checksum are verified against the mapped bytes, and the arrays are
// bulk-assigned (exact-sized, one memcpy each) into a fresh
// WorldRealization. The copy is deliberate — WorldRealization owns plain
// std::vectors, and keeping it that way means every existing consumer
// (replay drivers, byte_size accounting, to_trace) works unchanged; the
// expensive part being shared is synthesis (RNG-bound), not the copy
// (memory-bound, a small fraction of one replication's cost).
//
// Horizon extension mirrors WorldCache: a published file whose horizon is
// too short is treated as absent, and the builder republishes a longer
// realization over it (atomic rename). Synthesis on the same streams with a
// longer horizon produces a bitwise-identical prefix, so readers that
// loaded the shorter file remain consistent.
//
// Concurrency: `acquire()` takes `flock(LOCK_EX)` on a per-world `.lock`
// file only on the build path (fast path is a lock-free mmap read), re-runs
// try_load under the lock (a sibling may have published while we waited),
// and only then synthesizes. Crashed builders are harmless: flock dies with
// the process, and a half-written temp file is never visible under the
// final name.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "grid/realization.hpp"

namespace dg::grid {

class WorldPool {
 public:
  /// Bump when the file layout changes; mismatched files are ignored (and
  /// rebuilt over) rather than misparsed.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Opens (creating if needed) the pool directory. Throws std::runtime_error
  /// when the directory cannot be created.
  explicit WorldPool(std::string directory);

  WorldPool(const WorldPool&) = delete;
  WorldPool& operator=(const WorldPool&) = delete;

  struct Acquired {
    std::shared_ptr<const WorldRealization> world;
    /// True when a sibling's published file served the request; false when
    /// this process synthesized (and published) the world.
    bool from_pool = false;
  };

  /// A realization of (models, machine count, seed) covering at least
  /// [0, horizon]: loaded from a published file when one covers, else
  /// synthesized to `synth_horizon` (the caller applies its margin policy),
  /// published, and returned. `signature` must be
  /// WorldCache::signature(models..., num_machines) — it keys the file name
  /// and is embedded in the header. `scratch` is the caller's per-thread
  /// synthesis scratch.
  [[nodiscard]] Acquired acquire(const AvailabilityModel& availability,
                                 const CheckpointServerFaultModel& server_faults,
                                 const OutageModel& outages, std::size_t num_machines,
                                 double horizon, double synth_horizon, std::uint64_t seed,
                                 std::uint64_t signature, SynthesisScratch& scratch);

  /// Loads the published realization for (signature, seed) if one exists,
  /// parses, passes validation, matches the models, and covers `horizon`.
  /// Returns nullptr otherwise (corrupt or stale files are treated as
  /// absent, never an error).
  [[nodiscard]] std::shared_ptr<const WorldRealization> try_load(
      const AvailabilityModel& availability, const CheckpointServerFaultModel& server_faults,
      const OutageModel& outages, std::size_t num_machines, double horizon, std::uint64_t seed,
      std::uint64_t signature) const;

  /// Serializes `world` and publishes it atomically under (signature, seed),
  /// replacing any existing file. Throws std::runtime_error on I/O failure.
  void publish(const WorldRealization& world, std::uint64_t signature) const;

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

 private:
  [[nodiscard]] std::string world_path(std::uint64_t signature, std::uint64_t seed) const;

  std::string directory_;
};

}  // namespace dg::grid
