#include "grid/world_cache.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

#include "grid/world_pool.hpp"
#include "rng/splitmix64.hpp"
#include "rng/random_stream.hpp"

namespace dg::grid {

namespace {

std::uint64_t mix_double(std::uint64_t h, double value) noexcept {
  return rng::mix_seed(h, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

std::uint64_t WorldCache::signature(const AvailabilityModel& availability,
                                    const CheckpointServerFaultModel& server_faults,
                                    const OutageModel& outages,
                                    std::size_t num_machines) noexcept {
  std::uint64_t h = rng::fnv1a64("world.realization");
  h = mix_double(h, availability.time_to_failure.shape);
  h = mix_double(h, availability.time_to_failure.scale);
  h = mix_double(h, availability.time_to_repair.mu);
  h = mix_double(h, availability.time_to_repair.sigma);
  h = mix_double(h, availability.time_to_repair.lo);
  h = mix_double(h, availability.time_to_repair.hi);
  h = rng::mix_seed(h, availability.failures_enabled ? 1 : 0);
  h = rng::mix_seed(h, server_faults.enabled ? 1 : 0);
  h = mix_double(h, server_faults.mtbf);
  h = mix_double(h, server_faults.mttr);
  h = rng::mix_seed(h, outages.enabled ? 1 : 0);
  h = mix_double(h, outages.mean_interarrival);
  h = mix_double(h, outages.fraction);
  h = rng::mix_seed(h, outages.duration.type_index());
  outages.duration.visit([&h](const auto& d) {
    using D = std::decay_t<decltype(d)>;
    if constexpr (std::is_same_v<D, rng::UniformDist>) {
      h = mix_double(h, d.lo);
      h = mix_double(h, d.hi);
    } else if constexpr (std::is_same_v<D, rng::ExponentialDist>) {
      h = mix_double(h, d.mean_value);
    } else if constexpr (std::is_same_v<D, rng::TruncatedNormalDist>) {
      h = mix_double(h, d.mu);
      h = mix_double(h, d.sigma);
      h = mix_double(h, d.lo);
      h = mix_double(h, d.hi);
    } else if constexpr (std::is_same_v<D, rng::WeibullDist>) {
      h = mix_double(h, d.shape);
      h = mix_double(h, d.scale);
    } else {
      static_assert(std::is_same_v<D, rng::ConstantDist>);
      h = mix_double(h, d.value);
    }
  });
  h = rng::mix_seed(h, num_machines);
  return h;
}

bool WorldCache::matches(const WorldRealization& world, const AvailabilityModel& availability,
                         const CheckpointServerFaultModel& server_faults,
                         const OutageModel& outages, std::size_t num_machines) noexcept {
  return world.num_machines == num_machines &&
         world.availability.failures_enabled == availability.failures_enabled &&
         world.availability.time_to_failure.shape == availability.time_to_failure.shape &&
         world.availability.time_to_failure.scale == availability.time_to_failure.scale &&
         world.availability.time_to_repair.mu == availability.time_to_repair.mu &&
         world.availability.time_to_repair.sigma == availability.time_to_repair.sigma &&
         world.availability.time_to_repair.lo == availability.time_to_repair.lo &&
         world.availability.time_to_repair.hi == availability.time_to_repair.hi &&
         world.server_faults.enabled == server_faults.enabled &&
         world.server_faults.mtbf == server_faults.mtbf &&
         world.server_faults.mttr == server_faults.mttr &&
         world.outages.enabled == outages.enabled &&
         world.outages.mean_interarrival == outages.mean_interarrival &&
         world.outages.fraction == outages.fraction &&
         world.outages.duration == outages.duration;
}

std::shared_ptr<const WorldRealization> WorldCache::acquire(
    const AvailabilityModel& availability, const CheckpointServerFaultModel& server_faults,
    const OutageModel& outages, std::size_t num_machines, double horizon, std::uint64_t seed) {
  const Key key{seed, signature(availability, server_faults, outages, num_machines)};

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard lock(mutex_);
    std::shared_ptr<Slot>& entry = slots_[key];
    if (!entry) entry = std::make_shared<Slot>();
    entry->last_use = ++tick_;
    slot = entry;
  }

  // Per-entry build lock: concurrent workers wanting the same world
  // synthesize it once; workers wanting different worlds don't serialize.
  std::lock_guard build_lock(slot->build);
  bool was_resident = false;
  {
    std::lock_guard lock(mutex_);
    if (slot->world != nullptr && slot->world->covers(horizon) &&
        matches(*slot->world, availability, server_faults, outages, num_machines)) {
      ++stats_.hits;
      return slot->world;
    }
    was_resident = slot->world != nullptr;
  }

  // One scratch per worker thread: synthesis runs outside the cache mutex
  // (possibly concurrently for different keys), and a warmed scratch lets
  // repeat synthesis draw without allocations.
  static thread_local SynthesisScratch scratch;
  std::shared_ptr<const WorldRealization> world;
  bool from_pool = false;
  if (pool_ != nullptr) {
    // The pool loads a sibling's published world when one covers, else
    // synthesizes with the same margin this cache would and publishes it.
    WorldPool::Acquired acquired =
        pool_->acquire(availability, server_faults, outages, num_machines, horizon,
                       horizon * kHorizonMargin, seed, key.second, scratch);
    world = std::move(acquired.world);
    from_pool = acquired.from_pool;
  } else {
    world = std::make_shared<const WorldRealization>(
        WorldRealization::synthesize(availability, server_faults, outages, num_machines,
                                     horizon * kHorizonMargin, seed, scratch));
  }

  std::lock_guard lock(mutex_);
  if (from_pool) {
    ++stats_.pool_hits;
  } else if (was_resident) {
    ++stats_.extensions;
  } else {
    ++stats_.misses;
  }
  auto it = slots_.find(key);
  if (it != slots_.end() && it->second == slot) {
    // Replacing an undersized realization hands back its old bytes first.
    stats_.bytes -= slot->bytes;
    slot->world = world;
    slot->bytes = world->byte_size();
    stats_.bytes += slot->bytes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes);
    evict_locked(key);
  }
  return world;
}

void WorldCache::evict_locked(const Key& keep) {
  while (stats_.bytes > budget_bytes_ && slots_.size() > 1) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->first == keep || it->second->world == nullptr) continue;
      if (victim == slots_.end() || it->second->last_use < victim->second->last_use) victim = it;
    }
    if (victim == slots_.end()) return;  // only the protected entry is resident
    stats_.bytes -= victim->second->bytes;
    ++stats_.evictions;
    slots_.erase(victim);
  }
}

WorldCacheStats WorldCache::stats() const {
  std::lock_guard lock(mutex_);
  WorldCacheStats snapshot = stats_;
  snapshot.entries = slots_.size();
  return snapshot;
}

}  // namespace dg::grid
