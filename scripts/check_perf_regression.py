#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh BENCH_*.json against the committed baseline.

Records are matched by (benchmark, threads, procs). The compared metric is
replications_per_sec when a record has one, else events_per_sec; records with
neither (e.g. pure alloc-count rows) only check allocs_per_replication.

Because the committed baselines were produced on a different machine than the
CI runner, raw rates are not comparable. --calibrate names one benchmark to
use as a speed probe: the fresh/baseline ratio on that record (clamped to
[0.25, 4.0]) rescales every fresh rate before the tolerance band is applied.
A fresh record regresses when its calibrated rate drops more than --tolerance
below baseline, or its allocs/replication rises more than the tolerance band
(plus a small absolute slack for allocator noise) above baseline.

Unmatched records never fail the gate, so benchmarks can be added or retired
without touching this script — but they are reported explicitly: a fresh
record with no baseline counterpart prints as "NEW ... no baseline" (a newly
added benchmark whose first accepted run becomes its baseline), and a
baseline record with no fresh counterpart prints as "GONE ... retired" (a
benchmark the suite no longer emits — usually a cue to regenerate the
baseline file). Both statuses land in the --report JSON.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = bad input.

Example:
  scripts/check_perf_regression.py \
      --baseline BENCH_kernel.json --fresh fresh/BENCH_kernel.json \
      --calibrate kernel/event_chain_1m --tolerance 0.35 --report diff.json
"""

import argparse
import json
import sys

CLAMP_LO, CLAMP_HI = 0.25, 4.0
ALLOC_SLACK = 16.0  # absolute allocs/replication slack on top of the band


def load_records(path):
    try:
        with open(path, encoding="utf-8") as handle:
            records = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_perf_regression: cannot read {path}: {error}")
    if not isinstance(records, list):
        sys.exit(f"check_perf_regression: {path}: expected a JSON array of records")
    return {(r["benchmark"], r.get("threads", 0), r.get("procs", 0)): r for r in records}


def rate_metric(record):
    """(metric-name, value) for the record's primary rate, or (None, 0)."""
    if record.get("replications_per_sec", 0) > 0:
        return "replications_per_sec", record["replications_per_sec"]
    if record.get("events_per_sec", 0) > 0:
        return "events_per_sec", record["events_per_sec"]
    return None, 0.0


def calibration_ratio(baseline, fresh, probe):
    if not probe:
        return 1.0, "calibration disabled"
    base_probe = next((r for (name, *_), r in baseline.items() if name == probe), None)
    fresh_probe = next((r for (name, *_), r in fresh.items() if name == probe), None)
    if base_probe is None or fresh_probe is None:
        return 1.0, f"probe {probe!r} missing on one side; calibration skipped"
    _, base_rate = rate_metric(base_probe)
    _, fresh_rate = rate_metric(fresh_probe)
    if base_rate <= 0 or fresh_rate <= 0:
        return 1.0, f"probe {probe!r} has no rate; calibration skipped"
    ratio = max(CLAMP_LO, min(CLAMP_HI, fresh_rate / base_rate))
    return ratio, f"probe {probe!r}: fresh/baseline = {fresh_rate / base_rate:.3f}, clamped to {ratio:.3f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True, help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional drop after calibration (default 0.35)")
    parser.add_argument("--calibrate", default=None,
                        help="benchmark name used as the machine-speed probe")
    parser.add_argument("--report", default=None, help="write a JSON diff report here")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)
    ratio, ratio_note = calibration_ratio(baseline, fresh, args.calibrate)
    print(f"calibration: {ratio_note}")

    rows, regressions = [], []
    for key in sorted(set(baseline) | set(fresh)):
        name, threads, procs = key
        label = (f"{name}" + (f" @{threads}t" if threads else "")
                 + (f" @{procs}p" if procs else ""))
        if key not in baseline:
            rows.append({"benchmark": name, "threads": threads, "procs": procs,
                         "status": "new (no baseline)"})
            print(f"  NEW   {label}: no baseline (newly added benchmark; "
                  "not gated until a baseline is committed)")
            continue
        if key not in fresh:
            rows.append({"benchmark": name, "threads": threads, "procs": procs,
                         "status": "retired (baseline only)"})
            print(f"  GONE  {label}: baseline record has no fresh counterpart "
                  "(retired benchmark? consider regenerating the baseline)")
            continue

        base, new = baseline[key], fresh[key]
        row = {"benchmark": name, "threads": threads, "procs": procs, "status": "ok"}
        problems = []

        metric, base_rate = rate_metric(base)
        if metric:
            _, fresh_rate = rate_metric(new)
            calibrated = fresh_rate / ratio
            floor = base_rate * (1.0 - args.tolerance)
            row.update({"metric": metric, "baseline": base_rate, "fresh": fresh_rate,
                        "calibrated": calibrated, "floor": floor})
            if calibrated < floor:
                problems.append(
                    f"{metric} {calibrated:.0f} (calibrated) < floor {floor:.0f}"
                    f" (baseline {base_rate:.0f}, tolerance {args.tolerance:.0%})")

        base_allocs = base.get("allocs_per_replication", 0.0)
        fresh_allocs = new.get("allocs_per_replication", 0.0)
        if base_allocs or fresh_allocs:
            ceiling = base_allocs * (1.0 + args.tolerance) + ALLOC_SLACK
            row.update({"baseline_allocs_per_replication": base_allocs,
                        "fresh_allocs_per_replication": fresh_allocs,
                        "allocs_ceiling": ceiling})
            if fresh_allocs > ceiling:
                problems.append(
                    f"allocs/replication {fresh_allocs:.1f} > ceiling {ceiling:.1f}"
                    f" (baseline {base_allocs:.1f})")

        if problems:
            row["status"] = "regression: " + "; ".join(problems)
            regressions.append(f"{label}: " + "; ".join(problems))
            print(f"  FAIL  {label}: " + "; ".join(problems))
        else:
            detail = ""
            if metric:
                detail = f" {metric} {row['calibrated']:.0f} vs floor {row['floor']:.0f}"
            print(f"  ok    {label}:{detail}")
        rows.append(row)

    if args.report:
        report = {"baseline": args.baseline, "fresh": args.fresh,
                  "tolerance": args.tolerance, "calibration_ratio": ratio,
                  "calibration_note": ratio_note, "regressions": len(regressions),
                  "records": rows}
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.report}")

    if regressions:
        print(f"\n{len(regressions)} perf regression(s) against {args.baseline}")
        return 1
    print(f"\nno perf regressions against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
